"""Process-local metrics: counters, gauges, and latency histograms.

The registry is the single sink for everything the KAMEL pipeline
measures about itself — model calls, constraint rejections, pyramid
lookups, per-module latencies — and serializes to one JSON document
(``kamel ... --metrics-out``). It is deliberately dependency-free and
process-local: the paper's system is a single-process service, and a
scrape/push exporter can be layered on top of :meth:`MetricsRegistry.snapshot`
without touching the instrumented code.

Counters and gauges are plain attribute updates guarded only by the GIL
(instrumented hot loops aggregate locally and call :meth:`Counter.inc`
once per batch). Histograms combine fixed buckets — cumulative, Prometheus
style, so bucket edges survive aggregation — with streaming quantile
estimates (the P² algorithm of Jain & Chlamtac, CACM 1985) that need O(1)
memory per tracked quantile.
"""

from __future__ import annotations

import json
import math
import threading
from bisect import bisect_left, insort
from typing import Iterable, Mapping, Optional, Sequence, Union

from repro.obs.monitor import MonitorHub

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "P2Quantile",
    "LATENCY_BUCKETS",
    "COUNT_BUCKETS",
    "get_registry",
    "merge_snapshots",
    "set_registry",
]


LATENCY_BUCKETS: tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, math.inf,
)
"""Default bucket edges for wall-time histograms (seconds, 100 µs – 60 s)."""

COUNT_BUCKETS: tuple[float, ...] = (
    0.0, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0, math.inf,
)
"""Default bucket edges for small-integer distributions (calls, batch sizes)."""


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "description", "_value")

    def __init__(self, name: str, description: str = "") -> None:
        self.name = name
        self.description = description
        self._value = 0.0

    def inc(self, amount: Union[int, float] = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (inc {amount})")
        self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def reset(self) -> None:
        self._value = 0.0

    def to_dict(self) -> dict:
        return {"type": "counter", "value": self._value}

    def __repr__(self) -> str:
        return f"Counter({self.name}={self._value})"


class Gauge:
    """A value that can go up and down (queue depth, model count)."""

    __slots__ = ("name", "description", "_value")

    def __init__(self, name: str, description: str = "") -> None:
        self.name = name
        self.description = description
        self._value = 0.0

    def set(self, value: Union[int, float]) -> None:
        self._value = float(value)

    def inc(self, amount: Union[int, float] = 1) -> None:
        self._value += amount

    def dec(self, amount: Union[int, float] = 1) -> None:
        self._value -= amount

    @property
    def value(self) -> float:
        return self._value

    def reset(self) -> None:
        self._value = 0.0

    def to_dict(self) -> dict:
        return {"type": "gauge", "value": self._value}

    def __repr__(self) -> str:
        return f"Gauge({self.name}={self._value})"


class P2Quantile:
    """Streaming quantile estimate via the P² algorithm (no sample storage).

    Keeps five markers whose heights converge on the ``p`` quantile using
    piecewise-parabolic interpolation. Exact for the first five
    observations; O(1) memory and O(1) per observation afterwards.
    """

    __slots__ = ("p", "_heights", "_positions", "_desired", "_increments")

    def __init__(self, p: float) -> None:
        if not 0.0 < p < 1.0:
            raise ValueError(f"quantile must be in (0, 1), got {p}")
        self.p = p
        self._heights: list[float] = []
        self._positions = [0, 1, 2, 3, 4]
        self._desired = [0.0, 2 * p, 4 * p, 2 + 2 * p, 4.0]
        self._increments = [0.0, p / 2, p, (1 + p) / 2, 1.0]

    def observe(self, x: float) -> None:
        q = self._heights
        if len(q) < 5:
            insort(q, x)
            return
        n = self._positions
        # Locate the marker cell containing x, extending the extremes.
        if x < q[0]:
            q[0] = x
            k = 0
        elif x >= q[4]:
            q[4] = x
            k = 3
        else:
            k = bisect_left(q, x, 1, 4)
            if q[k] > x:
                k -= 1
            k = min(k, 3)
        for i in range(k + 1, 5):
            n[i] += 1
        for i in range(5):
            self._desired[i] += self._increments[i]
        # Nudge interior markers toward their desired positions.
        for i in (1, 2, 3):
            d = self._desired[i] - n[i]
            if (d >= 1 and n[i + 1] - n[i] > 1) or (d <= -1 and n[i - 1] - n[i] < -1):
                step = 1 if d >= 0 else -1
                candidate = self._parabolic(i, step)
                if not (q[i - 1] < candidate < q[i + 1]):
                    candidate = self._linear(i, step)
                q[i] = candidate
                n[i] += step

    def _parabolic(self, i: int, d: int) -> float:
        q, n = self._heights, self._positions
        return q[i] + d / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + d) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - d) * (q[i] - q[i - 1]) / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, d: int) -> float:
        q, n = self._heights, self._positions
        return q[i] + d * (q[i + d] - q[i]) / (n[i + d] - n[i])

    @property
    def value(self) -> Optional[float]:
        q = self._heights
        if not q:
            return None
        if len(q) < 5:
            # Still in the exact phase: empirical quantile of what we have.
            rank = self.p * (len(q) - 1)
            lo = int(math.floor(rank))
            hi = min(lo + 1, len(q) - 1)
            return q[lo] + (rank - lo) * (q[hi] - q[lo])
        return q[2]


class Histogram:
    """A distribution: cumulative fixed buckets plus streaming quantiles."""

    __slots__ = (
        "name", "description", "buckets", "_bucket_counts",
        "_count", "_sum", "_min", "_max", "_quantiles",
    )

    DEFAULT_QUANTILES: tuple[float, ...] = (0.5, 0.9, 0.99)

    def __init__(
        self,
        name: str,
        description: str = "",
        buckets: Optional[Sequence[float]] = None,
        quantiles: Optional[Sequence[float]] = None,
    ) -> None:
        self.name = name
        self.description = description
        edges = tuple(sorted(buckets if buckets is not None else LATENCY_BUCKETS))
        if not edges:
            raise ValueError(f"histogram {name} needs at least one bucket edge")
        if edges[-1] != math.inf:
            edges = edges + (math.inf,)
        self.buckets = edges
        self._bucket_counts = [0] * len(edges)
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._quantiles = {
            p: P2Quantile(p) for p in (quantiles or self.DEFAULT_QUANTILES)
        }

    def observe(self, value: Union[int, float]) -> None:
        value = float(value)
        self._count += 1
        self._sum += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        self._bucket_counts[bisect_left(self.buckets, value)] += 1
        for estimator in self._quantiles.values():
            estimator.observe(value)

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    @property
    def min(self) -> Optional[float]:
        return self._min if self._count else None

    @property
    def max(self) -> Optional[float]:
        return self._max if self._count else None

    @property
    def tracked_quantiles(self) -> tuple[float, ...]:
        """The quantile points with dedicated P² estimators, ascending."""
        return tuple(sorted(self._quantiles))

    def quantile(self, p: float) -> Optional[float]:
        """The streaming estimate for ``p``, or a bucket interpolation.

        Quantiles tracked from construction use their P² estimator; any
        other ``p`` falls back to linear interpolation over the cumulative
        bucket counts (coarser, but available for free).
        """
        if p in self._quantiles:
            return self._quantiles[p].value
        return self._bucket_quantile(p)

    def _bucket_quantile(self, p: float) -> Optional[float]:
        if not self._count:
            return None
        target = p * self._count
        cumulative = 0
        previous_edge = self.min if self.min is not None else 0.0
        for edge, bucket_count in zip(self.buckets, self._bucket_counts):
            if not bucket_count:
                continue
            if cumulative + bucket_count >= target:
                upper = min(edge, self._max)
                fraction = (target - cumulative) / bucket_count
                return previous_edge + fraction * (upper - previous_edge)
            cumulative += bucket_count
            previous_edge = min(edge, self._max)
        return self._max

    def bucket_counts(self) -> dict[float, int]:
        """Cumulative counts per upper bucket edge (Prometheus ``le``)."""
        out: dict[float, int] = {}
        running = 0
        for edge, bucket_count in zip(self.buckets, self._bucket_counts):
            running += bucket_count
            out[edge] = running
        return out

    def reset(self) -> None:
        self._bucket_counts = [0] * len(self.buckets)
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._quantiles = {p: P2Quantile(p) for p in self._quantiles}

    def to_dict(self) -> dict:
        return {
            "type": "histogram",
            "count": self._count,
            "sum": self._sum,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "quantiles": {
                f"p{int(p * 100)}": self._quantiles[p].value for p in self._quantiles
            },
            "buckets": {
                ("+Inf" if math.isinf(edge) else repr(edge)): cum
                for edge, cum in self.bucket_counts().items()
            },
        }

    def __repr__(self) -> str:
        return f"Histogram({self.name}, count={self._count}, mean={self.mean:.6g})"


Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Name -> metric map with snapshot/reset and JSON export.

    Metric objects are created once and then mutated in place, so
    instrumented modules may cache the returned handle; :meth:`reset`
    zeroes values without invalidating handles.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Metric] = {}
        self._lock = threading.Lock()
        #: The registry's rolling quality monitors (windowed failure rate,
        #: latency, …) — swapped and reset together with the metrics, so
        #: tests that isolate a registry isolate the windows too.
        self.monitors = MonitorHub()

    # -- creation / lookup ---------------------------------------------------

    def _get_or_create(self, name: str, factory, kind) -> Metric:
        metric = self._metrics.get(name)
        if metric is None:
            with self._lock:
                metric = self._metrics.get(name)
                if metric is None:
                    metric = factory()
                    self._metrics[name] = metric
        if not isinstance(metric, kind):
            raise TypeError(
                f"metric {name!r} is a {type(metric).__name__}, not a {kind.__name__}"
            )
        return metric

    def counter(self, name: str, description: str = "") -> Counter:
        return self._get_or_create(name, lambda: Counter(name, description), Counter)

    def gauge(self, name: str, description: str = "") -> Gauge:
        return self._get_or_create(name, lambda: Gauge(name, description), Gauge)

    def histogram(
        self,
        name: str,
        description: str = "",
        buckets: Optional[Sequence[float]] = None,
        quantiles: Optional[Sequence[float]] = None,
    ) -> Histogram:
        return self._get_or_create(
            name, lambda: Histogram(name, description, buckets, quantiles), Histogram
        )

    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def metrics(self) -> list[Metric]:
        """The live metric objects, sorted by name (exporters read these)."""
        with self._lock:
            return [metric for _, metric in sorted(self._metrics.items())]

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    # -- export --------------------------------------------------------------

    def snapshot(self, prefix: str = "") -> dict[str, dict]:
        """A plain-dict view of every metric (optionally name-filtered)."""
        with self._lock:
            items = sorted(self._metrics.items())
        return {
            name: metric.to_dict()
            for name, metric in items
            if name.startswith(prefix)
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, default=float)

    def write_json(self, path) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_json())
            handle.write("\n")

    def reset(self, prefix: str = "") -> None:
        """Zero metric values in place (handles stay valid).

        A full reset (no prefix) also empties the rolling monitor windows;
        a prefixed reset leaves them alone, since monitors aggregate
        across metric families.
        """
        with self._lock:
            metrics = list(self._metrics.values())
        for metric in metrics:
            if metric.name.startswith(prefix):
                metric.reset()
        if not prefix:
            self.monitors.reset()

    def __repr__(self) -> str:
        return f"MetricsRegistry({len(self._metrics)} metrics)"


# -- cross-process aggregation ------------------------------------------------


def _parse_edge(key: str) -> float:
    return math.inf if key == "+Inf" else float(key)


def _format_edge(edge: float) -> str:
    return "+Inf" if math.isinf(edge) else repr(edge)


def _cumulative_quantile(
    edges: Sequence[float],
    cumulative: Sequence[int],
    count: int,
    lo: Optional[float],
    hi: Optional[float],
    p: float,
) -> Optional[float]:
    """Linear interpolation over merged cumulative bucket counts.

    The merged-snapshot counterpart of :meth:`Histogram._bucket_quantile`:
    P² marker state cannot be combined across processes, but cumulative
    bucket counts on shared edges sum exactly, and a quantile interpolated
    from the merged buckets is correct to within one bucket's width.
    """
    if not count:
        return None
    target = p * count
    running = 0
    previous_edge = lo if lo is not None else 0.0
    top = hi if hi is not None else edges[-1]
    for edge, cum in zip(edges, cumulative):
        bucket_count = cum - running
        if not bucket_count:
            continue
        if cum >= target:
            upper = min(edge, top)
            fraction = (target - running) / bucket_count
            return previous_edge + fraction * (upper - previous_edge)
        running = cum
        previous_edge = min(edge, top)
    return hi


def merge_snapshots(
    snapshots: Iterable[Mapping[str, Mapping]],
) -> dict[str, dict]:
    """Combine per-process :meth:`MetricsRegistry.snapshot` dicts into one.

    The serving tier runs one registry per worker process; the pool merges
    their snapshots into a single fleet-wide view for ``/metrics``:

    * counters sum;
    * gauges sum (a queue depth split across workers adds up), except
      names ending in ``_rate``, which average — a rate is intensive, not
      extensive;
    * histograms sum counts, sums, and cumulative bucket counts on the
      union of edges; min/max combine; quantiles are re-derived from the
      merged buckets (P² marker state does not compose across processes).

    A name carrying different metric types across snapshots raises
    ``ValueError`` — that is a naming bug, not something to paper over.
    """
    merged: dict[str, dict] = {}
    rate_inputs: dict[str, list[float]] = {}
    for snap in snapshots:
        for name, data in snap.items():
            kind = data.get("type")
            if name not in merged:
                if kind == "histogram":
                    merged[name] = {
                        "type": "histogram",
                        "count": 0,
                        "sum": 0.0,
                        "min": None,
                        "max": None,
                        "quantile_keys": set(),
                        "bucket_counts": {},
                    }
                else:
                    merged[name] = {"type": kind, "value": 0.0}
            entry = merged[name]
            if entry["type"] != kind:
                raise ValueError(
                    f"metric {name!r} is a {kind} in one snapshot and a "
                    f"{entry['type']} in another"
                )
            if kind == "histogram":
                entry["count"] += data["count"]
                entry["sum"] += data["sum"]
                for bound in ("min", "max"):
                    value = data.get(bound)
                    if value is None:
                        continue
                    current = entry[bound]
                    pick = min if bound == "min" else max
                    entry[bound] = value if current is None else pick(current, value)
                entry["quantile_keys"].update(data.get("quantiles", {}))
                for key, cum in data.get("buckets", {}).items():
                    edge = _parse_edge(key)
                    entry["bucket_counts"][edge] = (
                        entry["bucket_counts"].get(edge, 0) + cum
                    )
            elif kind in ("counter", "gauge"):
                entry["value"] += data["value"]
                if kind == "gauge" and name.endswith("_rate"):
                    rate_inputs.setdefault(name, []).append(data["value"])
            else:
                raise ValueError(f"metric {name!r} has unknown type {kind!r}")
    for name, values in rate_inputs.items():
        merged[name]["value"] = sum(values) / len(values)
    for name, entry in merged.items():
        if entry["type"] != "histogram":
            continue
        edges = sorted(entry.pop("bucket_counts").items())
        quantile_keys = sorted(entry.pop("quantile_keys"))
        count = entry["count"]
        entry["mean"] = entry["sum"] / count if count else 0.0
        entry["quantiles"] = {
            key: _cumulative_quantile(
                [e for e, _ in edges],
                [c for _, c in edges],
                count,
                entry["min"],
                entry["max"],
                int(key.lstrip("p")) / 100.0,
            )
            for key in quantile_keys
        }
        entry["buckets"] = {_format_edge(e): c for e, c in edges}
    return merged


_default_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry (what the pipeline records into)."""
    return _default_registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the default registry; returns the previous one (for tests)."""
    global _default_registry
    previous = _default_registry
    _default_registry = registry
    return previous
