"""Telemetry exporters: Prometheus text exposition and trace files.

Everything the pipeline records — the :class:`~repro.obs.metrics.MetricsRegistry`
and the span trees from :mod:`repro.obs.tracing` — stays process-local
until something exports it. This module provides the three formats the
rest of the observability stack (collectors, trace viewers, diffing
scripts) consumes, dependency-free:

* :func:`render_prometheus` — the Prometheus text exposition format
  (version 0.0.4), with ``# HELP`` lines sourced from the instrument
  catalog and histograms rendered as native cumulative ``le`` buckets
  plus a separate ``_quantile`` gauge family for the P² estimates;
* :func:`spans_to_chrome_trace` — the Chrome trace-event JSON format
  (``ph: "X"`` complete events, microsecond timestamps), loadable
  directly in ``chrome://tracing`` or Perfetto (https://ui.perfetto.dev);
* :func:`spans_to_jsonl` — one JSON span tree per line, greppable by
  ``trace_id`` and diffable across runs.

The HTTP side (``/metrics`` for scraping) lives in
:mod:`repro.obs.server`; the CLI side (``kamel trace --export chrome``)
in :mod:`repro.cli`.
"""

from __future__ import annotations

import json
import math
import re
from typing import Any, Iterable, Optional, Sequence

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
)
from repro.obs.tracing import Span, finished_spans

__all__ = [
    "prometheus_name",
    "render_prometheus",
    "render_prometheus_snapshot",
    "spans_to_chrome_trace",
    "chrome_trace_json",
    "write_chrome_trace",
    "spans_to_jsonl",
    "write_spans_jsonl",
    "CONTENT_TYPE_PROMETHEUS",
]


CONTENT_TYPE_PROMETHEUS = "text/plain; version=0.0.4; charset=utf-8"
"""The Content-Type a /metrics response must declare."""

_INVALID_NAME_CHARS = re.compile(r"[^a-zA-Z0-9_:]")


def prometheus_name(name: str) -> str:
    """The catalog name mapped into the Prometheus metric-name charset.

    Dots (our module separators) and anything else outside
    ``[a-zA-Z0-9_:]`` become underscores: ``repro.kamel.failure_rate`` →
    ``repro_kamel_failure_rate``. A leading digit gets an underscore
    prefix.
    """
    out = _INVALID_NAME_CHARS.sub("_", name)
    if out and out[0].isdigit():
        out = "_" + out
    return out


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_number(value: float) -> str:
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _format_le(edge: float) -> str:
    return "+Inf" if math.isinf(edge) else _format_number(edge)


def _render_scalar(lines: list[str], metric, kind: str) -> None:
    name = prometheus_name(metric.name)
    if metric.description:
        lines.append(f"# HELP {name} {_escape_help(metric.description)}")
    lines.append(f"# TYPE {name} {kind}")
    lines.append(f"{name} {_format_number(metric.value)}")


def _render_histogram(lines: list[str], metric: Histogram) -> None:
    name = prometheus_name(metric.name)
    if metric.description:
        lines.append(f"# HELP {name} {_escape_help(metric.description)}")
    lines.append(f"# TYPE {name} histogram")
    for edge, cumulative in metric.bucket_counts().items():
        le = _escape_label_value(_format_le(edge))
        lines.append(f'{name}_bucket{{le="{le}"}} {cumulative}')
    lines.append(f"{name}_sum {_format_number(metric.sum)}")
    lines.append(f"{name}_count {metric.count}")
    # The P² streaming estimates ride along as a separate gauge family —
    # native Prometheus histograms have no quantile series, and mixing
    # summary-style lines into a histogram family is invalid exposition.
    quantile_lines = []
    for p in metric.tracked_quantiles:
        estimate = metric.quantile(p)
        if estimate is None:
            continue
        label = _escape_label_value(_format_number(p))
        quantile_lines.append(
            f'{name}_quantile{{quantile="{label}"}} {_format_number(estimate)}'
        )
    if quantile_lines:
        lines.append(f"# TYPE {name}_quantile gauge")
        lines.extend(quantile_lines)


def render_prometheus(registry: Optional[MetricsRegistry] = None) -> str:
    """The whole registry in Prometheus text exposition format.

    Deterministic (metrics sorted by name) and always newline-terminated,
    as scrapers expect. An empty registry renders to an empty document.
    """
    # Explicit None check: an empty registry is falsy (it has __len__),
    # and must not silently fall back to the global one.
    if registry is None:
        registry = get_registry()
    lines: list[str] = []
    for metric in registry.metrics():
        if isinstance(metric, Counter):
            _render_scalar(lines, metric, "counter")
        elif isinstance(metric, Gauge):
            _render_scalar(lines, metric, "gauge")
        elif isinstance(metric, Histogram):
            _render_histogram(lines, metric)
    if not lines:
        return ""
    return "\n".join(lines) + "\n"


def _label_str(labels: Optional[dict], extra: Optional[dict] = None) -> str:
    pairs = dict(labels or {})
    if extra:
        pairs.update(extra)
    if not pairs:
        return ""
    body = ",".join(
        f'{key}="{_escape_label_value(str(value))}"'
        for key, value in sorted(pairs.items())
    )
    return "{" + body + "}"


def render_prometheus_snapshot(
    snapshot: dict,
    labels: Optional[dict] = None,
    exclude: Sequence[str] = (),
) -> str:
    """Prometheus exposition from a plain snapshot dict (no live registry).

    The serving pool aggregates per-worker registries as
    :meth:`~repro.obs.metrics.MetricsRegistry.snapshot` dicts shipped over
    the result queue — by the time ``/metrics`` renders them, there is no
    metric object to hand to :func:`render_prometheus`. This renders the
    same exposition straight from the dict shapes ``to_dict`` /
    :func:`~repro.obs.metrics.merge_snapshots` produce, optionally
    stamping every sample with ``labels`` (e.g. ``{"worker": "2"}``) and
    skipping names in ``exclude`` (families the caller renders itself
    with finer-grained labels). ``# HELP`` lines come from the instrument
    catalog when the name is known there.
    """
    from repro.obs.instrument import METRIC_CATALOG

    lines: list[str] = []
    for raw_name in sorted(n for n in snapshot if n not in set(exclude)):
        data = snapshot[raw_name]
        kind = data.get("type")
        name = prometheus_name(raw_name)
        help_text = METRIC_CATALOG.get(raw_name)
        if help_text:
            lines.append(f"# HELP {name} {_escape_help(help_text)}")
        if kind in ("counter", "gauge"):
            lines.append(f"# TYPE {name} {kind}")
            lines.append(f"{name}{_label_str(labels)} {_format_number(data['value'])}")
        elif kind == "histogram":
            lines.append(f"# TYPE {name} histogram")
            buckets = sorted(
                data.get("buckets", {}).items(),
                key=lambda kv: math.inf if kv[0] == "+Inf" else float(kv[0]),
            )
            for key, cumulative in buckets:
                le = key if key == "+Inf" else _format_number(float(key))
                lines.append(
                    f"{name}_bucket{_label_str(labels, {'le': le})} {cumulative}"
                )
            lines.append(
                f"{name}_sum{_label_str(labels)} {_format_number(data['sum'])}"
            )
            lines.append(f"{name}_count{_label_str(labels)} {data['count']}")
            quantile_lines = []
            for key, estimate in sorted(data.get("quantiles", {}).items()):
                if estimate is None:
                    continue
                quantile = _format_number(int(key.lstrip("p")) / 100.0)
                quantile_lines.append(
                    f"{name}_quantile{_label_str(labels, {'quantile': quantile})}"
                    f" {_format_number(estimate)}"
                )
            if quantile_lines:
                lines.append(f"# TYPE {name}_quantile gauge")
                lines.extend(quantile_lines)
    if not lines:
        return ""
    return "\n".join(lines) + "\n"


# -- span exporters ----------------------------------------------------------


def _span_args(span_obj: Span) -> dict[str, Any]:
    args: dict[str, Any] = dict(span_obj.attributes)
    if span_obj.trace_id is not None:
        args["trace_id"] = span_obj.trace_id
    if span_obj.error is not None:
        args["error"] = span_obj.error
    return args


def spans_to_chrome_trace(
    roots: Optional[Iterable[Span]] = None,
    thread_names: Optional[dict[int, str]] = None,
) -> dict[str, Any]:
    """Finished span trees as a Chrome trace-event JSON document.

    Each span becomes one complete event (``ph: "X"``) with microsecond
    ``ts``/``dur``; parent/child nesting is preserved because a child's
    interval lies inside its parent's on the same ``tid`` lane (spans
    record the OS thread they ran on). Timestamps are rebased to the
    earliest root so the trace starts at zero. ``thread_names`` maps a
    span ``thread_id`` to a human lane label (``thread_name`` metadata
    events) — the serving pool names its synthetic per-shard lanes this
    way in the merged multi-worker trace.
    """
    roots = finished_spans() if roots is None else list(roots)
    events: list[dict[str, Any]] = [
        {"ph": "M", "pid": 1, "name": "process_name", "args": {"name": "kamel"}},
    ]
    if not roots:
        return {"traceEvents": events, "displayTimeUnit": "ms"}
    origin_s = min(r.start_s for r in roots)
    tids: dict[int, int] = {}
    for root in roots:
        for span_obj in root.walk():
            tid = tids.setdefault(span_obj.thread_id, len(tids) + 1)
            end_s = span_obj.end_s if span_obj.end_s is not None else span_obj.start_s
            event: dict[str, Any] = {
                "name": span_obj.name,
                "ph": "X",
                "ts": round((span_obj.start_s - origin_s) * 1e6, 3),
                "dur": round((end_s - span_obj.start_s) * 1e6, 3),
                "pid": 1,
                "tid": tid,
            }
            args = _span_args(span_obj)
            if args:
                event["args"] = args
            events.append(event)
    if thread_names:
        for thread_id, label in sorted(thread_names.items()):
            tid = tids.get(thread_id)
            if tid is None:
                continue
            events.append(
                {
                    "ph": "M",
                    "pid": 1,
                    "tid": tid,
                    "name": "thread_name",
                    "args": {"name": str(label)},
                }
            )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def chrome_trace_json(
    roots: Optional[Iterable[Span]] = None,
    indent: int = 2,
    thread_names: Optional[dict[int, str]] = None,
) -> str:
    return json.dumps(
        spans_to_chrome_trace(roots, thread_names=thread_names),
        indent=indent,
        default=str,
    )


def write_chrome_trace(
    path,
    roots: Optional[Iterable[Span]] = None,
    thread_names: Optional[dict[int, str]] = None,
) -> None:
    """Write a trace file loadable in Perfetto / ``chrome://tracing``."""
    with open(path, "w") as handle:
        handle.write(chrome_trace_json(roots, thread_names=thread_names))
        handle.write("\n")


def spans_to_jsonl(roots: Optional[Iterable[Span]] = None) -> str:
    """One JSON object per root span tree (children nested), one per line.

    The flat-file companion to the Chrome export: ``grep`` a trace id to
    pull out one request, ``jq`` to slice durations across a run.
    """
    roots = finished_spans() if roots is None else list(roots)
    return "".join(json.dumps(root.to_dict(), default=str) + "\n" for root in roots)


def write_spans_jsonl(path, roots: Optional[Iterable[Span]] = None) -> None:
    with open(path, "w") as handle:
        handle.write(spans_to_jsonl(roots))
