"""Rolling quality monitors: windowed rates with threshold callbacks.

The cumulative counters in :mod:`repro.obs.metrics` answer "what has this
process done since it started"; a long-lived streaming service also needs
"how is it doing *right now*". This module provides that second view:
fixed-capacity :class:`RollingWindow` buffers over the most recent
observations, wrapped in monitors that expose a windowed value (failure
rate, latency, rejection ratio, pyramid hit rate) and fire edge-triggered
callbacks when a threshold is crossed — the hook
:class:`~repro.core.streaming.StreamingImputationService` uses to alert
or degrade gracefully.

Monitors live on the :class:`~repro.obs.metrics.MetricsRegistry` (one
:class:`MonitorHub` per registry), so swapping or resetting the registry
— as tests and benchmarks do — swaps or resets the windows with it.

Everything here is stdlib-only and safe under the GIL: windows are
``collections.deque`` ring buffers, and threshold evaluation happens on
the observing thread.
"""

from __future__ import annotations

import math
from collections import Counter as _TallyCounter
from collections import deque
from typing import Any, Callable, Optional

__all__ = [
    "DEFAULT_WINDOW",
    "RollingWindow",
    "Threshold",
    "RollingMonitor",
    "LevelWindow",
    "MonitorHub",
]


DEFAULT_WINDOW = 2048
"""Default window capacity (observations), sized so short runs see every
observation (windowed == cumulative) while long-lived services track only
recent behavior."""

AlertCallback = Callable[["RollingMonitor", float], None]


class RollingWindow:
    """A fixed-capacity ring buffer of float observations.

    Push-only; once full, each new observation evicts the oldest. All
    summary statistics are computed over whatever the window currently
    holds.
    """

    __slots__ = ("_values", "_sum")

    def __init__(self, capacity: int = DEFAULT_WINDOW) -> None:
        if capacity < 1:
            raise ValueError(f"window capacity must be >= 1, got {capacity}")
        self._values: deque[float] = deque(maxlen=capacity)
        self._sum = 0.0

    @property
    def capacity(self) -> int:
        return self._values.maxlen or 0

    def push(self, value: float) -> None:
        values = self._values
        if len(values) == values.maxlen:
            self._sum -= values[0]
        self._sum += value
        values.append(value)

    def extend_bits(self, ones: int, total: int) -> None:
        """Push ``ones`` 1.0s and ``total - ones`` 0.0s (ratio observations)."""
        if total < ones or ones < 0:
            raise ValueError(f"need 0 <= ones <= total, got {ones}/{total}")
        for _ in range(ones):
            self.push(1.0)
        for _ in range(total - ones):
            self.push(0.0)

    def __len__(self) -> int:
        return len(self._values)

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / len(self._values) if self._values else 0.0

    @property
    def min(self) -> Optional[float]:
        return min(self._values) if self._values else None

    @property
    def max(self) -> Optional[float]:
        return max(self._values) if self._values else None

    def quantile(self, p: float) -> Optional[float]:
        """The empirical ``p`` quantile of the window (linear interpolation)."""
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {p}")
        if not self._values:
            return None
        ordered = sorted(self._values)
        rank = p * (len(ordered) - 1)
        lo = int(math.floor(rank))
        hi = min(lo + 1, len(ordered) - 1)
        return ordered[lo] + (rank - lo) * (ordered[hi] - ordered[lo])

    def clear(self) -> None:
        self._values.clear()
        self._sum = 0.0

    def __repr__(self) -> str:
        return f"RollingWindow({len(self)}/{self.capacity}, mean={self.mean:.6g})"


class Threshold:
    """One edge-triggered limit on a monitor's windowed value.

    Fires ``on_alert`` when the value crosses the limit (and the window
    holds at least ``min_count`` observations), then stays silent until
    the value returns to the good side, when ``on_clear`` (if any) fires
    and the threshold re-arms.
    """

    __slots__ = ("limit", "direction", "min_count", "on_alert", "on_clear", "breached")

    def __init__(
        self,
        limit: float,
        on_alert: AlertCallback,
        direction: str = "above",
        min_count: int = 20,
        on_clear: Optional[AlertCallback] = None,
    ) -> None:
        if direction not in ("above", "below"):
            raise ValueError(f"direction must be 'above' or 'below', got {direction!r}")
        self.limit = limit
        self.direction = direction
        self.min_count = min_count
        self.on_alert = on_alert
        self.on_clear = on_clear
        self.breached = False

    def _bad(self, value: float) -> bool:
        return value > self.limit if self.direction == "above" else value < self.limit

    def evaluate(self, monitor: "RollingMonitor", value: float, count: int) -> None:
        if count < self.min_count:
            return
        bad = self._bad(value)
        if bad and not self.breached:
            self.breached = True
            self.on_alert(monitor, value)
        elif not bad and self.breached:
            self.breached = False
            if self.on_clear is not None:
                self.on_clear(monitor, value)


class RollingMonitor:
    """A named rolling window plus its thresholds.

    ``observe`` pushes one value; ``extend`` pushes a batch of 0/1 bits
    (for ratio-style monitors: failures over segments, rejections over
    candidates). Either way every push re-evaluates the thresholds
    against the windowed mean.
    """

    __slots__ = ("name", "window", "_thresholds")

    def __init__(self, name: str, capacity: int = DEFAULT_WINDOW) -> None:
        self.name = name
        self.window = RollingWindow(capacity)
        self._thresholds: list[Threshold] = []

    # -- observation -------------------------------------------------------

    def observe(self, value: float) -> float:
        self.window.push(float(value))
        return self._evaluate()

    def extend(self, ones: int, total: int) -> float:
        """Record ``total`` binary outcomes, ``ones`` of them positive."""
        if total <= 0:
            return self.value
        self.window.extend_bits(ones, total)
        return self._evaluate()

    def _evaluate(self) -> float:
        value = self.window.mean
        count = len(self.window)
        for threshold in self._thresholds:
            threshold.evaluate(self, value, count)
        return value

    # -- state -------------------------------------------------------------

    @property
    def value(self) -> float:
        """The windowed mean (for 0/1 windows: the windowed rate)."""
        return self.window.mean

    @property
    def count(self) -> int:
        return len(self.window)

    def quantile(self, p: float) -> Optional[float]:
        return self.window.quantile(p)

    @property
    def breached(self) -> bool:
        return any(t.breached for t in self._thresholds)

    def add_threshold(
        self,
        limit: float,
        on_alert: AlertCallback,
        direction: str = "above",
        min_count: int = 20,
        on_clear: Optional[AlertCallback] = None,
    ) -> Threshold:
        threshold = Threshold(limit, on_alert, direction, min_count, on_clear)
        self._thresholds.append(threshold)
        return threshold

    def clear_thresholds(self) -> None:
        self._thresholds = []

    def reset(self) -> None:
        """Empty the window and re-arm thresholds (thresholds stay attached)."""
        self.window.clear()
        for threshold in self._thresholds:
            threshold.breached = False

    def to_dict(self) -> dict[str, Any]:
        return {
            "value": self.value,
            "count": self.count,
            "capacity": self.window.capacity,
            "breached": self.breached,
        }

    def __repr__(self) -> str:
        return f"RollingMonitor({self.name}, value={self.value:.6g}, n={self.count})"


class LevelWindow:
    """A rolling window over categorical outcomes (pyramid hit levels).

    Each observation is a pyramid level (a small int) or ``None`` for a
    miss; :meth:`rates` reports the windowed share of lookups served at
    each level, keyed ``"L<level>"`` (misses under ``"miss"``).
    """

    __slots__ = ("name", "_values")

    def __init__(self, name: str, capacity: int = DEFAULT_WINDOW) -> None:
        self.name = name
        self._values: deque[Optional[int]] = deque(maxlen=capacity)

    def observe(self, level: Optional[int]) -> None:
        self._values.append(level)

    def __len__(self) -> int:
        return len(self._values)

    def rates(self) -> dict[str, float]:
        n = len(self._values)
        if not n:
            return {}
        tally = _TallyCounter(
            "miss" if level is None else f"L{level}" for level in self._values
        )
        return {key: count / n for key, count in sorted(tally.items())}

    def reset(self) -> None:
        self._values.clear()

    def to_dict(self) -> dict[str, Any]:
        return {"count": len(self), "rates": self.rates()}

    def __repr__(self) -> str:
        return f"LevelWindow({self.name}, n={len(self)})"


class MonitorHub:
    """The standard rolling monitors the KAMEL pipeline feeds.

    One hub hangs off every :class:`~repro.obs.metrics.MetricsRegistry`
    (``registry.monitors``); the instrumented modules report through
    :func:`repro.obs.instrument.monitors`:

    * ``failure``   — per-segment imputation failures (``core.kamel``):
      segments resolved by the *linear* ladder rung only, the paper's
      failure definition; backs the ``repro.kamel.failure_rate`` gauge,
      so the gauge tracks *recent* behavior instead of the process
      lifetime.
    * ``degraded``  — segments resolved below the *top* ladder rung
      (reduced beam, counting, or linear); backs the
      ``repro.kamel.degraded_rate`` gauge and the ``/healthz``
      ``degraded`` status.
    * ``latency``   — ``StreamingImputationService.process`` seconds.
    * ``rejection`` — constraint-filter rejections over candidates in.
    * ``hit_rate``  — repository lookups finding a covering model.
    * ``hit_level`` — which pyramid level answered each lookup.
    * ``drift``     — the headline input-drift score (the unseen-cell
      mass of recent serving traffic vs the training reference sketch,
      fed by :class:`repro.obs.drift.DriftDetector`); its threshold
      flips ``/healthz`` when serving traffic leaves the trained region.
    * ``calibration`` — windowed |confidence − realized accuracy| per
      scored segment (:class:`repro.obs.quality.QualityTracker`), so a
      confidence score that stops predicting error also breaches health.
    """

    def __init__(self, capacity: int = DEFAULT_WINDOW) -> None:
        self.capacity = capacity
        self.failure = RollingMonitor("kamel.failure_rate", capacity)
        self.degraded = RollingMonitor("kamel.degraded_rate", capacity)
        self.latency = RollingMonitor("streaming.process_seconds", capacity)
        self.rejection = RollingMonitor("constraints.rejection_ratio", capacity)
        self.hit_rate = RollingMonitor("partitioning.hit_rate", capacity)
        self.hit_level = LevelWindow("partitioning.hit_level", capacity)
        self.drift = RollingMonitor("quality.drift_score", capacity)
        self.calibration = RollingMonitor("quality.calibration_gap", capacity)

    def all(self) -> dict[str, Any]:
        return {
            "failure": self.failure,
            "degraded": self.degraded,
            "latency": self.latency,
            "rejection": self.rejection,
            "hit_rate": self.hit_rate,
            "hit_level": self.hit_level,
            "drift": self.drift,
            "calibration": self.calibration,
        }

    def reset(self) -> None:
        for monitor in self.all().values():
            monitor.reset()

    def to_dict(self) -> dict[str, Any]:
        return {name: monitor.to_dict() for name, monitor in self.all().items()}

    def __repr__(self) -> str:
        return f"MonitorHub(capacity={self.capacity})"
