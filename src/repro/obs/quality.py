"""Confidence calibration and spatial quality attribution.

:attr:`~repro.core.result.SegmentOutcome.confidence` is the imputer's own
score for each filled gap — but a score is only useful if it is
*calibrated*: a segment reported at 0.9 should be right about 9 times in
10. This module closes that loop, and attributes quality to *places*:

* :class:`ReliabilityLedger` — fixed confidence bins accumulating
  (confidence, realized accuracy) pairs and reporting the expected
  calibration error (ECE) plus per-bin rows. Two ledgers run side by
  side: a ground-truth ledger fed by the eval harness (realized accuracy
  = fraction of truth probes within ``delta_m`` of the imputed polyline)
  and an online ledger fed with *proxy* accuracy where no truth exists —
  the degradation-ladder rung the segment resolved at, weighted by
  :data:`PROXY_RUNG_ACCURACY`, with constraint-rejection rate and
  detokenization snap distance exposed alongside as supporting proxies.
* :class:`SpatialQualityMap` — per-grid-cell counters (points imputed,
  failures, degradations, confidence and accuracy sums) answering "where
  is imputation bad"; :func:`repro.viz.heatmap.render_heatmap_svg` turns
  its scores into the choropleth behind ``kamel quality --heatmap``.
* :class:`QualityTracker` — the two ledgers plus the spatial map behind
  one ``observe_segment`` call, feeding the ``repro.quality.*`` gauges
  and the ``MonitorHub.calibration`` rolling monitor (windowed
  |confidence − realized|, whose threshold breaches ``/healthz``).

State is keyed by registry (a ``WeakKeyDictionary``), matching how
monitors hang off :class:`~repro.obs.metrics.MetricsRegistry`: tests and
benchmarks that swap registries get fresh quality state with them, and
the ``/quality`` endpoint reads whichever registry its server pins.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional, Sequence

from repro.obs import instrument as obs
from repro.obs.drift import DriftDetector
from repro.obs.metrics import MetricsRegistry, get_registry

__all__ = [
    "PROXY_RUNG_ACCURACY",
    "BinRow",
    "ReliabilityLedger",
    "CellQuality",
    "SpatialQualityMap",
    "QualityTracker",
    "QualityState",
    "quality_state",
    "quality_report",
]


PROXY_RUNG_ACCURACY: dict[str, float] = {
    "full": 1.0,
    "reduced_beam": 0.7,
    "counting": 0.4,
    "linear": 0.0,
}
"""Online proxy for realized accuracy when no ground truth exists: which
degradation-ladder rung resolved the segment. The weights mirror the
measured accuracy ordering of the rungs (full beam > reduced beam >
counting fallback > straight line) without pretending to be probabilities
— they make the online ledger *directionally* comparable to the
ground-truth one, nothing more."""

DEFAULT_CONFIDENCE_BINS = 10


@dataclass(frozen=True)
class BinRow:
    """One confidence bin of a reliability ledger."""

    lower: float
    upper: float
    count: int
    mean_confidence: float
    mean_accuracy: float

    @property
    def gap(self) -> float:
        """|confidence − accuracy| for this bin (0 when empty)."""
        return abs(self.mean_confidence - self.mean_accuracy) if self.count else 0.0


class ReliabilityLedger:
    """Confidence-vs-realized-accuracy bins with ECE.

    ``record(confidence, accuracy)`` drops one observation into the bin
    its confidence falls in; :meth:`ece` is the standard expected
    calibration error Σ (n_b/N)·|conf̄_b − acc̄_b| over the bins.
    """

    __slots__ = ("bins", "_counts", "_conf_sums", "_acc_sums")

    def __init__(self, bins: int = DEFAULT_CONFIDENCE_BINS) -> None:
        if bins < 1:
            raise ValueError(f"need at least one bin, got {bins}")
        self.bins = bins
        self._counts = [0] * bins
        self._conf_sums = [0.0] * bins
        self._acc_sums = [0.0] * bins

    def record(self, confidence: float, accuracy: float) -> None:
        confidence = min(1.0, max(0.0, float(confidence)))
        accuracy = min(1.0, max(0.0, float(accuracy)))
        k = min(self.bins - 1, int(confidence * self.bins))
        self._counts[k] += 1
        self._conf_sums[k] += confidence
        self._acc_sums[k] += accuracy

    @property
    def total(self) -> int:
        return sum(self._counts)

    def ece(self) -> float:
        """Expected calibration error over the current bins (0 when empty)."""
        total = self.total
        if total == 0:
            return 0.0
        error = 0.0
        for n, conf, acc in zip(self._counts, self._conf_sums, self._acc_sums):
            if n:
                error += (n / total) * abs(conf / n - acc / n)
        return error

    def rows(self) -> list[BinRow]:
        """Per-bin (confidence, realized accuracy, count) rows, all bins."""
        width = 1.0 / self.bins
        out = []
        for k, (n, conf, acc) in enumerate(
            zip(self._counts, self._conf_sums, self._acc_sums)
        ):
            out.append(
                BinRow(
                    lower=k * width,
                    upper=(k + 1) * width,
                    count=n,
                    mean_confidence=conf / n if n else 0.0,
                    mean_accuracy=acc / n if n else 0.0,
                )
            )
        return out

    def reset(self) -> None:
        self._counts = [0] * self.bins
        self._conf_sums = [0.0] * self.bins
        self._acc_sums = [0.0] * self.bins

    def to_dict(self) -> dict[str, Any]:
        return {
            "total": self.total,
            "ece": self.ece(),
            "bins": [
                {
                    "lower": row.lower,
                    "upper": row.upper,
                    "count": row.count,
                    "mean_confidence": row.mean_confidence,
                    "mean_accuracy": row.mean_accuracy,
                }
                for row in self.rows()
            ],
        }

    def __repr__(self) -> str:
        return f"ReliabilityLedger(bins={self.bins}, n={self.total}, ece={self.ece():.4f})"


class CellQuality:
    """Quality counters for one grid cell."""

    __slots__ = ("points", "failed", "degraded", "conf_sum", "conf_n", "acc_sum", "acc_n")

    def __init__(self) -> None:
        self.points = 0
        self.failed = 0
        self.degraded = 0
        self.conf_sum = 0.0
        self.conf_n = 0
        self.acc_sum = 0.0
        self.acc_n = 0

    @property
    def quality(self) -> float:
        """The cell's quality score in [0, 1] for the heatmap: mean
        realized/proxy accuracy when recorded, else 1 − failure share."""
        if self.acc_n:
            return self.acc_sum / self.acc_n
        if self.points:
            return 1.0 - self.failed / self.points
        return 1.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "points": self.points,
            "failed": self.failed,
            "degraded": self.degraded,
            "quality": self.quality,
            "mean_confidence": self.conf_sum / self.conf_n if self.conf_n else None,
        }


class SpatialQualityMap:
    """Per-cell quality attribution over imputed points."""

    __slots__ = ("cells",)

    def __init__(self) -> None:
        self.cells: dict[tuple[int, int], CellQuality] = {}

    def _cell(self, cell: tuple[int, int]) -> CellQuality:
        existing = self.cells.get(cell)
        if existing is None:
            existing = self.cells[cell] = CellQuality()
        return existing

    def record_point(
        self,
        cell: tuple[int, int],
        failed: bool,
        degraded: bool,
        confidence: Optional[float],
        accuracy: Optional[float],
    ) -> None:
        cq = self._cell(cell)
        cq.points += 1
        if failed:
            cq.failed += 1
        if degraded:
            cq.degraded += 1
        if confidence is not None:
            cq.conf_sum += confidence
            cq.conf_n += 1
        if accuracy is not None:
            cq.acc_sum += accuracy
            cq.acc_n += 1

    def quality_scores(self) -> dict[tuple[int, int], float]:
        """Cell → quality in [0, 1], the heatmap's input."""
        return {cell: cq.quality for cell, cq in self.cells.items()}

    def point_counts(self) -> dict[tuple[int, int], int]:
        return {cell: cq.points for cell, cq in self.cells.items()}

    def worst(self, n: int = 10) -> list[dict[str, Any]]:
        """The ``n`` lowest-quality cells (deterministic tie-break)."""
        ranked = sorted(
            self.cells.items(), key=lambda item: (item[1].quality, item[0])
        )
        return [
            {"cell": list(cell), **cq.to_dict()} for cell, cq in ranked[:n]
        ]

    def __len__(self) -> int:
        return len(self.cells)

    def __repr__(self) -> str:
        return f"SpatialQualityMap(cells={len(self.cells)})"


class QualityTracker:
    """The online quality state one serving system feeds.

    ``observe_segment`` is the hot-path entry (one call per imputed
    segment, only when quality observability is enabled);
    ``record_ground_truth`` is the eval harness's offline entry. Both
    update the ledgers, the spatial map, the ``repro.quality.*`` gauges,
    and the calibration rolling monitor.
    """

    def __init__(self, bins: int = DEFAULT_CONFIDENCE_BINS) -> None:
        self.online = ReliabilityLedger(bins)
        self.ground_truth = ReliabilityLedger(bins)
        self.spatial = SpatialQualityMap()

    # -- online (proxy) path ---------------------------------------------

    def observe_segment(
        self,
        outcome,
        cells: Sequence[tuple[int, int]],
        snap_distance_m: Optional[float] = None,
    ) -> None:
        """Fold one :class:`~repro.core.result.SegmentOutcome` in.

        ``cells`` are the grid cells of the segment's imputed points (in
        order, so per-point confidences line up when present).
        """
        proxy = PROXY_RUNG_ACCURACY.get(outcome.rung or "", 0.0)
        confidence = outcome.confidence
        point_confs: Sequence[Optional[float]]
        if outcome.point_confidences and len(outcome.point_confidences) == len(cells):
            point_confs = outcome.point_confidences
        else:
            point_confs = [confidence] * len(cells)
        for cell, conf in zip(cells, point_confs):
            self.spatial.record_point(
                cell, outcome.failed, outcome.degraded, conf, proxy
            )
        obs.count("repro.quality.records_total")
        obs.gauge("repro.quality.cells_tracked").set(len(self.spatial))
        if snap_distance_m is not None:
            obs.observe("repro.quality.snap_distance_m", snap_distance_m)
        if confidence is not None:
            self.online.record(confidence, proxy)
            self._update_calibration(confidence, proxy)

    # -- ground-truth (eval) path ----------------------------------------

    def record_ground_truth(
        self,
        confidence: Optional[float],
        accuracy: float,
        cells: Iterable[tuple[int, int]] = (),
    ) -> None:
        """Fold one scored segment in: realized ``accuracy`` in [0, 1]."""
        for cell in cells:
            cq = self.spatial._cell(cell)
            cq.acc_sum += accuracy
            cq.acc_n += 1
        if confidence is None:
            return
        self.ground_truth.record(confidence, accuracy)
        self._update_calibration(confidence, accuracy)

    def _update_calibration(self, confidence: float, accuracy: float) -> None:
        gap = abs(confidence - accuracy)
        windowed = obs.monitors().calibration.observe(gap)
        obs.gauge("repro.quality.calibration_gap").set(windowed)
        ledger = self.ground_truth if self.ground_truth.total else self.online
        obs.gauge("repro.quality.ece").set(ledger.ece())

    # -- reporting --------------------------------------------------------

    def report(self, registry: Optional[MetricsRegistry] = None) -> dict[str, Any]:
        """The tracker's slice of the ``/quality`` payload."""
        hub = obs.monitors(registry)
        return {
            "calibration": {
                "online": self.online.to_dict(),
                "ground_truth": self.ground_truth.to_dict(),
            },
            "spatial": {
                "cells": len(self.spatial),
                "worst": self.spatial.worst(10),
            },
            "proxies": {
                "constraint_rejection_ratio": hub.rejection.value,
                "calibration_gap_windowed": hub.calibration.value,
            },
        }

    def __repr__(self) -> str:
        return (
            f"QualityTracker(online={self.online.total}, "
            f"truth={self.ground_truth.total}, cells={len(self.spatial)})"
        )


@dataclass
class QualityState:
    """Everything quality-related hanging off one registry."""

    tracker: Optional[QualityTracker] = None
    drift: Optional[DriftDetector] = None


_STATES: "weakref.WeakKeyDictionary[MetricsRegistry, QualityState]" = (
    weakref.WeakKeyDictionary()
)


def quality_state(registry: Optional[MetricsRegistry] = None) -> QualityState:
    """The (lazily created) quality state of the default/given registry."""
    # Explicit None check: an empty registry is falsy (it has __len__).
    reg = get_registry() if registry is None else registry
    state = _STATES.get(reg)
    if state is None:
        state = _STATES[reg] = QualityState()
    return state


def quality_report(registry: Optional[MetricsRegistry] = None) -> dict[str, Any]:
    """The full ``/quality`` endpoint payload for one registry."""
    state = quality_state(registry)
    hub = obs.monitors(registry)
    payload: dict[str, Any] = {
        "enabled": state.tracker is not None or state.drift is not None,
        "monitors": {
            "drift": hub.drift.to_dict(),
            "calibration": hub.calibration.to_dict(),
        },
        "drift": state.drift.to_dict() if state.drift is not None else None,
    }
    payload.update(
        state.tracker.report(registry)
        if state.tracker is not None
        else {"calibration": None, "spatial": None, "proxies": None}
    )
    return payload
