"""Input-distribution drift detection for a serving KAMEL system.

The models a :class:`~repro.core.kamel.Kamel` system serves with were fit
on one spatial distribution of traffic; when the serving region or its
density shifts (new neighbourhoods, rerouted arteries, a different city
altogether), imputation quality degrades *silently* — the pipeline stays
fast and alive while returning garbage. This module makes that shift
observable:

* :class:`DistributionSketch` — a compact histogram of the training-time
  traffic: grid-cell visit counts plus fixed-bucket histograms of three
  trajectory features (segment length, gap duration, speed). Built at
  ``fit``/``add_training`` time and persisted alongside the serialized
  model store (``drift.json``), so a *loaded* system still knows what it
  was trained on.
* :class:`DriftDetector` — a rolling window of per-trajectory sketches
  over recent serving traffic, compared to the reference after every
  observation. Three divergence scores over the cell histograms: the
  population-stability index (PSI, with epsilon smoothing), the smoothed
  Jensen–Shannon divergence, and the *unseen-cell mass* — the fraction
  of recent serving points landing in cells the training data never
  visited. Scores land in gauges (``repro.drift.*``), and the headline
  unseen-cell mass feeds the ``MonitorHub.drift`` rolling monitor, whose
  edge-triggered threshold flips ``/healthz`` to ``degraded`` — a
  drifting deployment reads as unhealthy, not just a slow one.

The unseen-cell mass is the headline because it is the one score robust
to a *thin* serving window: each point is independently in or out of the
training support, so a handful of trajectories already measure it
faithfully, and same-region traffic scores near zero no matter how
sparse. PSI and JS see the full density redistribution (and so catch
same-support shifts the unseen mass cannot), but are inflated by
support concentration until the window covers the region — treat them as
trend gauges. Feature-level drift (segment length / gap duration /
speed) is diagnostic only: serving input is sparse while training input
is dense, so those distributions differ by construction and must not
gate health.

Everything here is stdlib-only and cheap: observing one trajectory is
O(points), scoring is O(cells in the union), and nothing runs at all
unless drift detection was explicitly enabled (the hot loop keeps its
single ``is None`` branch).
"""

from __future__ import annotations

import math
from collections import deque
from typing import Any, Iterable, Mapping, Optional, Sequence

from repro.obs import instrument as obs

__all__ = [
    "DistributionSketch",
    "DriftDetector",
    "FEATURE_BUCKETS",
    "population_stability_index",
    "smoothed_js_divergence",
]


FEATURE_BUCKETS: dict[str, tuple[float, ...]] = {
    # Upper edges (exclusive) of the fixed feature buckets; one implicit
    # overflow bucket follows the last edge. Roughly log-spaced to cover
    # dense 15 s sampling through kilometre-scale sparsified gaps.
    "segment_length_m": (10.0, 25.0, 50.0, 100.0, 200.0, 400.0, 800.0, 1600.0),
    "gap_duration_s": (5.0, 10.0, 20.0, 40.0, 80.0, 160.0, 320.0, 640.0),
    "speed_mps": (2.0, 5.0, 8.0, 12.0, 16.0, 22.0, 30.0, 45.0),
}
"""Bucket edges for the per-feature histograms, keyed by feature name."""

_SMOOTHING = 1e-4
"""Epsilon mass given to empty buckets so disjoint supports stay finite."""


def _bucket_index(edges: Sequence[float], value: float) -> int:
    for k, edge in enumerate(edges):
        if value < edge:
            return k
    return len(edges)


def _normalize(counts: Sequence[float]) -> list[float]:
    total = float(sum(counts))
    n = len(counts)
    if total <= 0:
        return [1.0 / n] * n
    # Epsilon smoothing, renormalized: buckets present only on one side
    # contribute a large-but-finite term instead of an infinite one.
    return [(c + _SMOOTHING * total) / (total * (1.0 + _SMOOTHING * n)) for c in counts]


def population_stability_index(
    reference: Sequence[float], current: Sequence[float]
) -> float:
    """PSI between two aligned count vectors (smoothed, symmetric-ish).

    The credit-scoring rule of thumb reads < 0.1 as stable, 0.1–0.25 as
    moderate shift, and > 0.25 as a significant one; fully disjoint
    supports score far above 1 under the epsilon smoothing.
    """
    if len(reference) != len(current):
        raise ValueError(
            f"aligned vectors required, got {len(reference)} vs {len(current)}"
        )
    p = _normalize(reference)
    q = _normalize(current)
    return float(sum((qi - pi) * math.log(qi / pi) for pi, qi in zip(p, q)))


def smoothed_js_divergence(
    reference: Sequence[float], current: Sequence[float]
) -> float:
    """Jensen–Shannon divergence (base e, smoothed), bounded by ln 2."""
    if len(reference) != len(current):
        raise ValueError(
            f"aligned vectors required, got {len(reference)} vs {len(current)}"
        )
    p = _normalize(reference)
    q = _normalize(current)
    js = 0.0
    for pi, qi in zip(p, q):
        mi = 0.5 * (pi + qi)
        js += 0.5 * pi * math.log(pi / mi) + 0.5 * qi * math.log(qi / mi)
    return float(js)


def _aligned(
    reference: Mapping[Any, float], current: Mapping[Any, float]
) -> tuple[list[float], list[float]]:
    """Two aligned count vectors over the key union, sorted for determinism."""
    keys = sorted(set(reference) | set(current))
    return (
        [float(reference.get(k, 0.0)) for k in keys],
        [float(current.get(k, 0.0)) for k in keys],
    )


class DistributionSketch:
    """Cell-visit counts plus feature histograms for a set of trajectories.

    ``grid`` is any :class:`repro.grid.base.Grid`; cells are its integer
    lattice coordinates. The sketch is additive (``observe_trajectory``
    accumulates) and serializable (``to_dict``/``from_dict``), and two
    sketches built over the same grid are directly comparable.
    """

    __slots__ = ("cell_counts", "feature_counts", "trajectories")

    def __init__(self) -> None:
        self.cell_counts: dict[tuple[int, int], int] = {}
        self.feature_counts: dict[str, list[int]] = {
            name: [0] * (len(edges) + 1) for name, edges in FEATURE_BUCKETS.items()
        }
        self.trajectories = 0

    # -- building ----------------------------------------------------------

    def observe_trajectory(self, trajectory, grid) -> None:
        """Accumulate one trajectory's cells and pairwise features."""
        points = trajectory.points
        for p in points:
            cell = grid.cell_of(p)
            self.cell_counts[cell] = self.cell_counts.get(cell, 0) + 1
        for a, b in zip(points, points[1:]):
            distance = a.distance_to(b)
            self._observe_feature("segment_length_m", distance)
            if a.t is not None and b.t is not None and b.t > a.t:
                duration = b.t - a.t
                self._observe_feature("gap_duration_s", duration)
                self._observe_feature("speed_mps", distance / duration)
        self.trajectories += 1

    def _observe_feature(self, name: str, value: float) -> None:
        edges = FEATURE_BUCKETS[name]
        self.feature_counts[name][_bucket_index(edges, value)] += 1

    @classmethod
    def from_trajectories(cls, trajectories: Iterable, grid) -> "DistributionSketch":
        sketch = cls()
        for trajectory in trajectories:
            sketch.observe_trajectory(trajectory, grid)
        return sketch

    @classmethod
    def from_token_store(cls, store, tokenizer) -> "DistributionSketch":
        """Rebuild a reference sketch from a tokenized trajectory store.

        The fallback for model directories serialized before sketches
        existed: cells come straight from the stored tokens, features from
        token centroids and timestamps — coarser than raw points (centroid
        snapping quantizes distances) but on the same grid, so the cell
        histogram is exact.
        """
        sketch = cls()
        vocab = tokenizer.vocabulary
        for seq in store:
            cells = []
            for token, t in zip(seq.tokens, seq.times):
                if vocab.is_special(token):
                    continue
                cell = tokenizer.cell_of_token(token)
                cells.append((cell, t))
                sketch.cell_counts[cell] = sketch.cell_counts.get(cell, 0) + 1
            for (cell_a, t_a), (cell_b, t_b) in zip(cells, cells[1:]):
                distance = tokenizer.grid.cell_distance_m(cell_a, cell_b)
                sketch._observe_feature("segment_length_m", distance)
                if t_a is not None and t_b is not None and t_b > t_a:
                    duration = t_b - t_a
                    sketch._observe_feature("gap_duration_s", duration)
                    sketch._observe_feature("speed_mps", distance / duration)
            sketch.trajectories += 1
        return sketch

    # -- introspection -----------------------------------------------------

    @property
    def total_points(self) -> int:
        return sum(self.cell_counts.values())

    @property
    def num_cells(self) -> int:
        return len(self.cell_counts)

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "cells": {f"{q}_{r}": c for (q, r), c in sorted(self.cell_counts.items())},
            "features": {k: list(v) for k, v in sorted(self.feature_counts.items())},
            "trajectories": self.trajectories,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "DistributionSketch":
        sketch = cls()
        for name, count in payload.get("cells", {}).items():
            q, r = (int(v) for v in name.split("_"))
            sketch.cell_counts[(q, r)] = int(count)
        for name, counts in payload.get("features", {}).items():
            if name in sketch.feature_counts and len(counts) == len(
                sketch.feature_counts[name]
            ):
                sketch.feature_counts[name] = [int(c) for c in counts]
        sketch.trajectories = int(payload.get("trajectories", 0))
        return sketch

    def __repr__(self) -> str:
        return (
            f"DistributionSketch(cells={self.num_cells}, "
            f"points={self.total_points}, trajectories={self.trajectories})"
        )


DEFAULT_DRIFT_WINDOW = 64
"""Serving trajectories the online sketch covers before evicting."""

DEFAULT_DRIFT_LIMIT = 0.25
"""Unseen-cell-mass limit for the drift monitor threshold: same-city
control traffic measures well under 0.05 (only GPS noise pushes points
off the trained cells), while traffic from a shifted road layout lands
most of its points in never-trained cells (> 0.5)."""


class DriftDetector:
    """Windowed divergence of serving traffic against a training sketch.

    ``observe`` pushes one serving trajectory into a rolling window of
    per-trajectory mini-sketches (evicting the oldest beyond ``window``),
    recomputes the divergence scores, updates the ``repro.drift.*``
    gauges, and feeds the headline unseen-cell mass into
    ``monitors().drift`` — where an edge-triggered threshold (installed
    by :meth:`Kamel.enable_quality_observability` or a streaming alert)
    turns sustained drift into a ``/healthz`` breach.
    """

    def __init__(
        self,
        reference: DistributionSketch,
        grid,
        window: int = DEFAULT_DRIFT_WINDOW,
        min_observations: int = 8,
    ) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        if reference.total_points == 0:
            raise ValueError("reference sketch is empty; fit the system first")
        self.reference = reference
        self.grid = grid
        self.min_observations = min_observations
        self._window: deque[DistributionSketch] = deque(maxlen=window)
        self._online_cells: dict[tuple[int, int], int] = {}
        self._online_features: dict[str, list[int]] = {
            name: [0] * (len(edges) + 1) for name, edges in FEATURE_BUCKETS.items()
        }
        self._scores: dict[str, float] = {}

    # -- observation -------------------------------------------------------

    def observe(self, trajectory) -> dict[str, float]:
        """Fold one serving trajectory in; returns the fresh scores."""
        mini = DistributionSketch()
        mini.observe_trajectory(trajectory, self.grid)
        if len(self._window) == self._window.maxlen:
            self._subtract(self._window[0])
        self._window.append(mini)
        self._add(mini)
        obs.count("repro.drift.observations_total")
        return self._rescore()

    def _add(self, mini: DistributionSketch) -> None:
        for cell, count in mini.cell_counts.items():
            self._online_cells[cell] = self._online_cells.get(cell, 0) + count
        for name, counts in mini.feature_counts.items():
            agg = self._online_features[name]
            for k, c in enumerate(counts):
                agg[k] += c

    def _subtract(self, mini: DistributionSketch) -> None:
        for cell, count in mini.cell_counts.items():
            remaining = self._online_cells.get(cell, 0) - count
            if remaining > 0:
                self._online_cells[cell] = remaining
            else:
                self._online_cells.pop(cell, None)
        for name, counts in mini.feature_counts.items():
            agg = self._online_features[name]
            for k, c in enumerate(counts):
                agg[k] = max(0, agg[k] - c)

    # -- scoring -----------------------------------------------------------

    def _rescore(self) -> dict[str, float]:
        ref_cells, cur_cells = _aligned(self.reference.cell_counts, self._online_cells)
        current_total = sum(self._online_cells.values())
        unseen = 0
        if current_total:
            ref = self.reference.cell_counts
            unseen = sum(
                count
                for cell, count in self._online_cells.items()
                if cell not in ref
            )
        scores = {
            "cell_psi": population_stability_index(ref_cells, cur_cells),
            "cell_js": smoothed_js_divergence(ref_cells, cur_cells),
            "unseen_cell_mass": unseen / current_total if current_total else 0.0,
        }
        for name in FEATURE_BUCKETS:
            scores[f"feature.{name.rsplit('_', 1)[0]}_psi"] = (
                population_stability_index(
                    self.reference.feature_counts[name], self._online_features[name]
                )
            )
        self._scores = scores
        obs.gauge("repro.drift.cell_psi").set(scores["cell_psi"])
        obs.gauge("repro.drift.cell_js").set(scores["cell_js"])
        obs.gauge("repro.drift.feature.segment_length_psi").set(
            scores["feature.segment_length_psi"]
        )
        obs.gauge("repro.drift.feature.gap_duration_psi").set(
            scores["feature.gap_duration_psi"]
        )
        obs.gauge("repro.drift.feature.speed_psi").set(scores["feature.speed_psi"])
        obs.gauge("repro.drift.unseen_cell_mass").set(scores["unseen_cell_mass"])
        obs.gauge("repro.drift.window_trajectories").set(len(self._window))
        # The headline score drives health. Unseen-cell mass is the one
        # score robust to a thin serving window: each point is judged
        # in-or-out of the training support independently, so it needs no
        # support-coverage correction — whereas PSI/JS over the full cell
        # histogram are inflated by sparse-window support concentration
        # and only converge once the window covers the region. Before
        # min_observations feed 0.0: the monitor's min_count also guards
        # the threshold, but a half-full window right after enabling must
        # not read as drift.
        headline = scores["unseen_cell_mass"] if self.ready else 0.0
        obs.monitors().drift.observe(headline)
        return scores

    # -- state -------------------------------------------------------------

    @property
    def ready(self) -> bool:
        """Whether the window holds enough traffic to score meaningfully."""
        return len(self._window) >= self.min_observations

    @property
    def scores(self) -> dict[str, float]:
        """The most recent divergence scores (empty before any traffic)."""
        return dict(self._scores)

    @property
    def window_trajectories(self) -> int:
        return len(self._window)

    def to_dict(self) -> dict[str, Any]:
        """The ``/quality`` endpoint's drift section."""
        return {
            "ready": self.ready,
            "window_trajectories": len(self._window),
            "window_capacity": self._window.maxlen,
            "reference": {
                "cells": self.reference.num_cells,
                "points": self.reference.total_points,
                "trajectories": self.reference.trajectories,
            },
            "online_cells": len(self._online_cells),
            "scores": dict(sorted(self._scores.items())),
        }

    def __repr__(self) -> str:
        psi = self._scores.get("cell_psi")
        shown = f"{psi:.3f}" if psi is not None else "-"
        return f"DriftDetector(window={len(self._window)}, cell_psi={shown})"
