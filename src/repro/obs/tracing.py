"""Nestable spans: where the imputation pipeline spends its time.

A span is one timed region (``impute.trajectory``, ``impute.segment``,
``bert.forward``) with wall-clock duration, free-form attributes (cell
count, beam width, model level used, candidates filtered), and children —
together the spans of one operation form a tree mirroring the paper's
module decomposition.

Tracing is **off by default**: :func:`span` then returns a shared no-op
context manager, so a hot loop pays roughly one attribute load and one
branch per span. Enable it (``enable_tracing()`` or the CLI's
``--trace``) to collect real trees, readable via :func:`finished_spans`
and serializable with :meth:`Span.to_dict`.

Spans nest per-thread (a thread-local stack), exception-safely: a span
that exits through an exception is closed, marked with the exception
type, and re-raises.

**Wire format.** :meth:`Span.to_dict` / :meth:`Span.from_dict` round-trip
a whole tree through plain JSON-able dicts, so serving workers can ship
their span trees to the pool over the result pipe. Timestamps are
``time.perf_counter`` values, which are *process-local*: a tree arriving
from another process must be rebased with :meth:`Span.shift` using the
difference of the two processes' :func:`clock_offset` anchors before it
can share a timeline (a merged Chrome trace) with local spans.

**Trace IDs** tie one request's telemetry together: entry points
(``Kamel.impute``, ``StreamingImputationService.process``, the eval
harness) open a :func:`trace_scope`, and every span opened — and every
log line emitted via :mod:`repro.obs.logging` — inside that scope
carries the scope's id. Scopes are thread-local and independent of
whether span *collection* is enabled, so logs stay correlated even with
tracing off.
"""

from __future__ import annotations

import threading
import time
import uuid
from contextlib import contextmanager
from typing import Any, Iterator, Optional

__all__ = [
    "Span",
    "Tracer",
    "clock_offset",
    "get_tracer",
    "span",
    "enable_tracing",
    "disable_tracing",
    "tracing_enabled",
    "finished_spans",
    "clear_spans",
    "new_trace_id",
    "current_trace_id",
    "trace_scope",
]


def clock_offset() -> float:
    """This process's epoch-to-perf_counter anchor.

    ``time.time() - time.perf_counter()``, sampled back to back. Two
    processes on the same machine share the epoch clock, so a span tree
    shipped from process W rebases into process P's perf_counter timebase
    by shifting it ``clock_offset_W - clock_offset_P`` (see
    :meth:`Span.shift`). Sub-millisecond accurate — the two reads are a
    few hundred nanoseconds apart — which is plenty for aligning
    cross-process request timelines.
    """
    return time.time() - time.perf_counter()


def new_trace_id() -> str:
    """A fresh 16-hex-char request id (random, collision-negligible)."""
    return uuid.uuid4().hex[:16]


class Span:
    """One timed region of the pipeline, with attributes and children."""

    __slots__ = (
        "name", "attributes", "children", "start_s", "end_s", "error",
        "trace_id", "thread_id", "cpu_start_s", "cpu_end_s",
    )

    def __init__(
        self,
        name: str,
        attributes: Optional[dict[str, Any]] = None,
        trace_id: Optional[str] = None,
    ) -> None:
        self.name = name
        self.attributes: dict[str, Any] = attributes or {}
        self.children: list[Span] = []
        self.start_s = time.perf_counter()
        self.end_s: Optional[float] = None
        self.error: Optional[str] = None
        self.trace_id = trace_id
        self.thread_id = threading.get_ident()
        self.cpu_start_s: Optional[float] = None
        self.cpu_end_s: Optional[float] = None

    @property
    def duration_s(self) -> Optional[float]:
        if self.end_s is None:
            return None
        return self.end_s - self.start_s

    @property
    def cpu_s(self) -> Optional[float]:
        """Thread CPU time spent in the span (None unless the tracer's
        ``capture_cpu`` flag was on — the profiler turns it on)."""
        if self.cpu_start_s is None or self.cpu_end_s is None:
            return None
        return self.cpu_end_s - self.cpu_start_s

    @property
    def self_s(self) -> Optional[float]:
        """Wall time spent in this span but not in any child span."""
        if self.duration_s is None:
            return None
        children = sum(c.duration_s or 0.0 for c in self.children)
        return max(0.0, self.duration_s - children)

    def set(self, **attributes: Any) -> "Span":
        """Attach attributes to the span (chainable)."""
        self.attributes.update(attributes)
        return self

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> list["Span"]:
        """Every span named ``name`` in this subtree."""
        return [s for s in self.walk() if s.name == name]

    def to_dict(self) -> dict:
        """A JSON-able tree. Round-trips through :meth:`from_dict`:
        ``start_s``/``end_s`` (process-local perf_counter values) and the
        recording thread id ride along so a reconstructed tree keeps its
        timeline and lane assignment."""
        out: dict[str, Any] = {
            "name": self.name,
            "duration_s": self.duration_s,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "thread_id": self.thread_id,
        }
        if self.cpu_s is not None:
            out["cpu_s"] = self.cpu_s
        if self.trace_id is not None:
            out["trace_id"] = self.trace_id
        if self.attributes:
            out["attributes"] = dict(self.attributes)
        if self.error is not None:
            out["error"] = self.error
        if self.children:
            out["children"] = [c.to_dict() for c in self.children]
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "Span":
        """Rebuild a span tree from :meth:`to_dict` output.

        Tolerates minimal dicts (only ``name``): missing timestamps
        reconstruct as a zero-length span at origin 0, so old exports
        stay loadable. The rebuilt span is *finished* — it never joins a
        live tracer stack.
        """
        span_obj = cls.__new__(cls)
        span_obj.name = data["name"]
        span_obj.attributes = dict(data.get("attributes") or {})
        span_obj.start_s = float(data.get("start_s") or 0.0)
        end_s = data.get("end_s")
        if end_s is None:
            duration = data.get("duration_s")
            end_s = span_obj.start_s + (float(duration) if duration else 0.0)
        span_obj.end_s = float(end_s)
        span_obj.error = data.get("error")
        span_obj.trace_id = data.get("trace_id")
        span_obj.thread_id = int(data.get("thread_id") or 0)
        cpu_s = data.get("cpu_s")
        span_obj.cpu_start_s = 0.0 if cpu_s is not None else None
        span_obj.cpu_end_s = float(cpu_s) if cpu_s is not None else None
        span_obj.children = [cls.from_dict(c) for c in data.get("children") or []]
        return span_obj

    def shift(self, offset_s: float) -> "Span":
        """Shift this tree's timeline by ``offset_s`` seconds, in place.

        The cross-process alignment primitive: a tree shipped from
        another process moves into the local perf_counter timebase with
        ``tree.shift(remote_clock_offset - clock_offset())``. Durations
        are unchanged. Returns the span (chainable).
        """
        for span_obj in self.walk():
            span_obj.start_s += offset_s
            if span_obj.end_s is not None:
                span_obj.end_s += offset_s
        return self

    def render(self, indent: int = 0) -> str:
        """A flame-graph-ish text rendering of the subtree."""
        duration = f"{self.duration_s * 1000:.3f} ms" if self.duration_s is not None else "open"
        attrs = " ".join(f"{k}={v}" for k, v in self.attributes.items())
        line = "  " * indent + f"{self.name} [{duration}]" + (f" {attrs}" if attrs else "")
        return "\n".join([line] + [c.render(indent + 1) for c in self.children])

    def __repr__(self) -> str:
        return f"Span({self.name!r}, duration_s={self.duration_s}, children={len(self.children)})"


class _NoopSpan:
    """The disabled-tracing fast path: every operation is a no-op."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False

    def set(self, **attributes: Any) -> "_NoopSpan":
        return self


_NOOP_SPAN = _NoopSpan()


class _SpanContext:
    """Context manager pushing a real span onto the tracer's stack."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", name: str, attributes: dict[str, Any]) -> None:
        self._tracer = tracer
        self._span = Span(name, attributes, trace_id=tracer.current_trace_id())
        if tracer.capture_cpu:
            self._span.cpu_start_s = time.thread_time()

    def __enter__(self) -> Span:
        self._tracer._push(self._span)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self._span.error = exc_type.__name__
        self._tracer._pop(self._span)
        return False


class Tracer:
    """Per-thread span stacks plus the finished root-span buffer."""

    def __init__(self, max_roots: int = 1000) -> None:
        self.enabled = False
        #: When on, spans also record per-thread CPU time (``Span.cpu_s``).
        #: Off by default — ``time.thread_time`` costs a syscall per span;
        #: :class:`repro.obs.profile.Profiler` flips it for its window.
        self.capture_cpu = False
        self.max_roots = max_roots
        self._local = threading.local()
        self._roots: list[Span] = []
        self._lock = threading.Lock()

    # -- collection ----------------------------------------------------------

    def span(self, name: str, **attributes: Any):
        """Open a span under the current one (no-op when disabled)."""
        if not self.enabled:
            return _NOOP_SPAN
        return _SpanContext(self, name, attributes)

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _push(self, span_obj: Span) -> None:
        stack = self._stack()
        if stack:
            stack[-1].children.append(span_obj)
        stack.append(span_obj)

    def _pop(self, span_obj: Span) -> None:
        span_obj.end_s = time.perf_counter()
        cpu_now = time.thread_time() if span_obj.cpu_start_s is not None else None
        stack = self._stack()
        # Exception-safe unwind: close everything above the span too.
        while stack:
            top = stack.pop()
            if top.end_s is None:
                top.end_s = span_obj.end_s
            if top.cpu_start_s is not None and top.cpu_end_s is None and cpu_now is not None:
                top.cpu_end_s = cpu_now
            if top is span_obj:
                break
        if not stack:
            with self._lock:
                self._roots.append(span_obj)
                if len(self._roots) > self.max_roots:
                    del self._roots[: len(self._roots) - self.max_roots]

    def current(self) -> Optional[Span]:
        """The innermost open span on this thread, if any."""
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    # -- trace ids -----------------------------------------------------------

    def current_trace_id(self) -> Optional[str]:
        """This thread's active request id (None outside any trace scope)."""
        return getattr(self._local, "trace_id", None)

    def set_trace_id(self, trace_id: Optional[str]) -> None:
        self._local.trace_id = trace_id

    # -- inspection ----------------------------------------------------------

    def finished(self) -> list[Span]:
        """Completed root spans, oldest first (bounded by ``max_roots``)."""
        with self._lock:
            return list(self._roots)

    def clear(self) -> None:
        with self._lock:
            self._roots.clear()

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return f"Tracer({state}, finished={len(self._roots)})"


_tracer = Tracer()


def get_tracer() -> Tracer:
    """The process-wide tracer used by the instrumented pipeline."""
    return _tracer


def span(name: str, **attributes: Any):
    """Open a pipeline span (module-level shorthand; no-op when disabled)."""
    if not _tracer.enabled:
        return _NOOP_SPAN
    return _SpanContext(_tracer, name, attributes)


def enable_tracing() -> None:
    _tracer.enabled = True


def disable_tracing() -> None:
    _tracer.enabled = False


def tracing_enabled() -> bool:
    return _tracer.enabled


def current_trace_id() -> Optional[str]:
    """The calling thread's active request id, if a trace scope is open."""
    return _tracer.current_trace_id()


@contextmanager
def trace_scope(trace_id: Optional[str] = None, *, inherit: bool = True):
    """Bind a request id to the calling thread for the block's duration.

    Every span opened and every ``repro.*`` log record emitted inside the
    block carries the id. With ``inherit`` (the default), entering a
    scope inside another one keeps the outer id — so the streaming
    service opens the scope and ``Kamel.impute`` joins it — while
    ``inherit=False`` forces a fresh id. Yields the active id.
    """
    previous = _tracer.current_trace_id()
    if trace_id is None:
        trace_id = previous if (inherit and previous is not None) else new_trace_id()
    _tracer.set_trace_id(trace_id)
    try:
        yield trace_id
    finally:
        _tracer.set_trace_id(previous)


def finished_spans() -> list[Span]:
    """Completed root spans collected since the last :func:`clear_spans`."""
    return _tracer.finished()


def clear_spans() -> None:
    _tracer.clear()
