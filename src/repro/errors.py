"""Exception hierarchy for the KAMEL reproduction library.

All library-raised exceptions derive from :class:`KamelError` so callers can
catch everything coming out of this package with a single ``except`` clause.
That contract extends to the resilience layer: a deadline overrun
(:class:`DeadlineExceeded`), an open circuit (:class:`CircuitOpenError`), and
a rejected input (:class:`QuarantinedInputError`) are all *typed* signals the
pipeline raises deliberately and handles at well-defined boundaries — they
are part of graceful degradation, not crashes.  Injected chaos faults
(:class:`repro.resilience.chaos.InjectedFault`) deliberately do **not**
derive from :class:`KamelError`: they simulate infrastructure failures
(network, disk, a wedged model server) that originate *outside* the library,
which is exactly what the retry/breaker machinery must survive.
"""

from __future__ import annotations

from typing import Optional


class KamelError(Exception):
    """Base class for every error raised by this library."""


class ConfigError(KamelError):
    """An invalid configuration value was supplied."""


class NotFittedError(KamelError):
    """A component that requires training was used before being trained."""


class EmptyInputError(KamelError):
    """An operation that needs data received an empty input."""


class VocabularyError(KamelError):
    """A token was used that the vocabulary does not know about."""


class ModelRepositoryError(KamelError):
    """The pyramid model repository was asked for something inconsistent."""


class ImputationError(KamelError):
    """A gap could not be imputed and no fallback was allowed."""


class DeadlineExceeded(KamelError):
    """A time budget ran out mid-operation.

    Raised by :meth:`repro.resilience.deadline.Deadline.check` between model
    calls so a pathological segment triggers the linear fallback instead of
    hanging the request.  Carries the overrun in seconds when known.
    """

    def __init__(self, message: str, overrun_s: Optional[float] = None) -> None:
        super().__init__(message)
        self.overrun_s = overrun_s


class CircuitOpenError(KamelError):
    """A circuit breaker is open and the call was short-circuited.

    The degradation ladder treats this as "skip straight to the next rung":
    no time is spent on a dependency that has been failing consistently.
    """


class OverloadError(KamelError):
    """A request was refused (or evicted) by serving-tier admission control.

    Raised/propagated by :class:`repro.serve.pool.ServingPool` when a
    shard's bounded queue is full and the configured admission policy
    sheds load instead of queueing without bound.  Carries the shard and
    the policy that made the decision so callers can tell "you were the
    newest request under ``shed``" from "you were the oldest under
    ``shed-oldest``" apart.  Shedding is part of staying up — this is a
    typed signal, not a crash.
    """

    def __init__(
        self,
        message: str,
        shard: Optional[int] = None,
        policy: Optional[str] = None,
    ) -> None:
        super().__init__(message)
        self.shard = shard
        self.policy = policy


class QuarantinedInputError(KamelError):
    """An input was rejected as malformed and belongs in quarantine.

    Raised by input validation (non-finite coordinates, absurd magnitudes)
    before any imputation work starts.  The streaming service catches it,
    records the trajectory in the dead-letter store with ``reason``, and
    keeps the stream alive.
    """

    def __init__(self, message: str, reason: str = "invalid") -> None:
        super().__init__(message)
        self.reason = reason
