"""Exception hierarchy for the KAMEL reproduction library.

All library-raised exceptions derive from :class:`KamelError` so callers can
catch everything coming out of this package with a single ``except`` clause.
"""

from __future__ import annotations


class KamelError(Exception):
    """Base class for every error raised by this library."""


class ConfigError(KamelError):
    """An invalid configuration value was supplied."""


class NotFittedError(KamelError):
    """A component that requires training was used before being trained."""


class EmptyInputError(KamelError):
    """An operation that needs data received an empty input."""


class VocabularyError(KamelError):
    """A token was used that the vocabulary does not know about."""


class ModelRepositoryError(KamelError):
    """The pyramid model repository was asked for something inconsistent."""


class ImputationError(KamelError):
    """A gap could not be imputed and no fallback was allowed."""
