"""Command-line interface: run comparisons and regenerate paper figures.

Examples::

    kamel compare --dataset porto --sparseness 800
    kamel figure fig9
    kamel figure fig12-ablation --full
    kamel list-figures
    kamel impute --train train.csv --input sparse.csv --output dense.csv

Observability flags (global, before the subcommand)::

    kamel --log-level DEBUG --metrics-out run.json compare --dataset porto
    kamel --trace figure fig9
    kamel stats run.json          # summarize a saved metrics snapshot

Telemetry export::

    kamel serve-metrics --port 9100 --demo     # /metrics, /healthz, /spans
    kamel trace --export chrome -o trace.json -- compare --dataset porto
    kamel trace --export jsonl -- figure fig9  # one span tree per line

Profiling and continuous benchmarking (see docs/observability.md)::

    kamel profile -- compare --dataset porto   # stage table + cost ledger
    kamel profile --format svg -o flame.svg -- figure fig9
    kamel bench counting --repeats 3 --compare BENCH_observability.json
    kamel bench counting --update-baseline     # refresh the committed snapshot
    kamel stats before.json after.json         # side-by-side delta table

Fault injection (see docs/resilience.md)::

    kamel chaos --failure-rate 0.3 --latency-rate 0.1 --deadline-ms 250
    kamel chaos --seed 7 --trajectories 40 --json

Sharded serving (see docs/serving.md)::

    kamel serve --demo --workers 4 --metrics-port 9101
    kamel serve --model-dir saved/ --input sparse.jsonl --output dense.jsonl
    kamel loadtest --workers 4 --trajectories 200 --output BENCH_serve.json
    kamel loadtest --workers 2 --kill-worker-after 5   # exercises recovery

Overload protection (see docs/serving.md)::

    kamel loadtest --offered-tps 2x --max-queue-depth 8 --request-deadline-ms 2000
    kamel loadtest --offered-tps 25 --admission shed-oldest --min-shed 1
    kamel serve --demo --max-queue-depth 16 --admission block

Distributed tracing & tail-latency attribution (see docs/serving.md)::

    kamel loadtest --trace-out trace.json --flight-out flight.json
    kamel tail flight.json                 # p50/p99 stage-attribution table
    kamel tail http://127.0.0.1:9101/slow  # same, from a live pool
    kamel trace --from flight.json --trace-id 4f2a... --export text

Quality observability (see docs/observability.md)::

    kamel quality --heatmap quality.svg --quality-out quality.json
    kamel drift                # shifted traffic: drift monitor breaches
    kamel drift --control      # training-city traffic: stays green
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro.eval.figures import ALL_FIGURES, Scale, jakarta_workload, porto_workload
from repro.eval.harness import ExperimentRunner
from repro.eval.report import render_table
from repro.obs import configure_logging, enable_tracing, finished_spans, get_registry


def _cmd_list_figures(_: argparse.Namespace) -> int:
    for name, fn in ALL_FIGURES.items():
        doc = (fn.__doc__ or "").strip().splitlines()[0]
        print(f"{name:24s} {doc}")
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    if args.name not in ALL_FIGURES:
        print(f"unknown figure {args.name!r}; try `kamel list-figures`", file=sys.stderr)
        return 2
    scale = Scale.full() if args.full else Scale.small()
    result = ALL_FIGURES[args.name](scale)
    print(json.dumps(result, indent=2, default=float))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    scale = Scale.full() if args.full else Scale.small()
    if args.dataset == "porto":
        workload = porto_workload(scale)
    else:
        workload = jakarta_workload(scale)
    workload = workload.with_sparseness(args.sparseness)
    if args.delta is not None:
        workload = workload.with_delta(args.delta)
    runner = ExperimentRunner(workload)
    rows = []
    for method in args.methods:
        scores = runner.run_default(method)
        rows.append(
            [
                method,
                f"{scores.scores.recall:.3f}",
                f"{scores.scores.precision:.3f}",
                f"{scores.scores.failure_rate:.3f}",
                f"{scores.train_time_s:.2f}",
                f"{scores.impute_time_s:.2f}",
            ]
        )
    print(
        render_table(
            ["method", "recall", "precision", "failure", "train_s", "impute_s"], rows
        )
    )
    return 0


def _cmd_impute(args: argparse.Namespace) -> int:
    from repro.core.config import KamelConfig
    from repro.core.kamel import Kamel
    from repro.geo.adapter import projection_for, trajectory_from_latlon
    from repro.io.csvio import imputed_point_flags, read_latlon_csv, write_latlon_csv

    train_logs = read_latlon_csv(args.train)
    sparse_logs = read_latlon_csv(args.input)
    all_records = [r for _, records in train_logs for r in records]
    projection = projection_for(all_records)

    train = [
        trajectory_from_latlon(tid, records, projection) for tid, records in train_logs
    ]
    sparse = [
        trajectory_from_latlon(tid, records, projection) for tid, records in sparse_logs
    ]

    config = KamelConfig(cell_edge_m=args.cell_size, maxgap_m=args.maxgap)
    system = Kamel(config).fit(train)
    results = system.impute_batch(sparse)

    dense = [r.trajectory for r in results]
    flags = [imputed_point_flags(s, d) for s, d in zip(sparse, dense)]
    write_latlon_csv(args.output, dense, projection, flags)

    segments = sum(r.num_segments for r in results)
    failed = sum(r.num_failed for r in results)
    inserted = sum(sum(f) for f in flags)
    print(
        f"imputed {len(sparse)} trajectories: inserted {inserted} points, "
        f"{failed}/{segments} segments fell back to a straight line"
    )
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.eval.report import figure_to_markdown

    scale = Scale.full() if args.full else Scale.small()
    names = args.figures or list(ALL_FIGURES)
    sections = ["# Reproduction report", ""]
    for name in names:
        if name not in ALL_FIGURES:
            print(f"unknown figure {name!r}; try `kamel list-figures`", file=sys.stderr)
            return 2
        result = ALL_FIGURES[name](scale)
        sections.append(figure_to_markdown(name, result))
    report = "\n".join(sections)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(report)
        print(f"wrote {args.output}")
    else:
        print(report)
    return 0


def _histogram_row(name: str, data: dict) -> list[str]:
    quantiles = data.get("quantiles") or {}

    def fmt(value) -> str:
        return f"{value:.6g}" if isinstance(value, (int, float)) else "-"

    return [
        name,
        str(data.get("count", 0)),
        fmt(data.get("mean")),
        fmt(quantiles.get("p50")),
        fmt(quantiles.get("p90")),
        fmt(quantiles.get("p99")),
        fmt(data.get("max")),
    ]


def render_stats(snapshot: dict) -> str:
    """A two-part summary table for a metrics snapshot (see ``kamel stats``)."""
    sections: list[str] = []
    scalars = [
        [name, f"{data['value']:.6g}", data["type"]]
        for name, data in sorted(snapshot.items())
        if data.get("type") in ("counter", "gauge")
    ]
    if scalars:
        sections.append(render_table(["metric", "value", "type"], scalars))
    histograms = [
        _histogram_row(name, data)
        for name, data in sorted(snapshot.items())
        if data.get("type") == "histogram" and data.get("count")
    ]
    if histograms:
        sections.append(
            render_table(
                ["histogram", "count", "mean", "p50", "p90", "p99", "max"], histograms
            )
        )
    if not sections:
        return "(no metrics recorded)"
    return "\n\n".join(sections)


def _load_snapshot_or_fail(path: str):
    """Read a snapshot file, or print why it can't be used and return None.

    Both ``kamel stats`` and ``kamel bench --compare`` funnel user-supplied
    files through here so a missing file or malformed JSON is a one-line
    error and a non-zero exit, not a traceback.
    """
    from repro.bench import load_snapshot

    try:
        return load_snapshot(path)
    except OSError as exc:
        print(f"error: cannot read snapshot {path!r}: {exc}", file=sys.stderr)
    except ValueError as exc:  # includes json.JSONDecodeError
        print(f"error: {path!r} is not a valid snapshot: {exc}", file=sys.stderr)
    return None


def _cmd_stats(args: argparse.Namespace) -> int:
    files = args.metrics_json or []
    if len(files) > 2:
        print("kamel stats takes at most two snapshot files", file=sys.stderr)
        return 2
    if len(files) == 2:
        # Side-by-side delta of two snapshots (registry --metrics-out
        # documents or bench snapshots), via the bench comparator.
        from repro.bench import compare_snapshots, render_deltas

        docs = []
        for path in files:
            doc = _load_snapshot_or_fail(path)
            if doc is None:
                return 2
            docs.append(doc)
        try:
            deltas = compare_snapshots(docs[0], docs[1])
        except ValueError as exc:  # JSON, but not a snapshot document
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(render_deltas(deltas))
        return 0
    if len(files) == 1:
        snapshot = _load_snapshot_or_fail(files[0])
        if snapshot is None:
            return 2
        print(render_stats(snapshot))
        return 0
    if args.catalog:
        from repro.obs import METRIC_CATALOG

        print(
            render_table(
                ["metric", "meaning"],
                [[name, desc] for name, desc in sorted(METRIC_CATALOG.items())],
            )
        )
        return 0
    # No file: summarize whatever this process recorded (useful when
    # embedding the CLI; a fresh process has nothing yet).
    print(render_stats(get_registry().snapshot()))
    return 0


def _cmd_serve_metrics(args: argparse.Namespace) -> int:
    """Stand up the observability endpoint, optionally under demo load."""
    import time

    from repro.obs.server import ObservabilityServer

    server = ObservabilityServer(port=args.port, host=args.host).start()
    print(f"serving telemetry on {server.url} "
          f"(/metrics, /healthz, /spans)", file=sys.stderr)
    deadline = None if args.duration is None else time.monotonic() + args.duration
    try:
        if args.demo:
            _run_demo_stream(deadline)
        else:
            while deadline is None or time.monotonic() < deadline:
                time.sleep(0.1)
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
    return 0


def _run_demo_stream(deadline: Optional[float]) -> None:
    """Impute a synthetic live feed until the deadline (or forever).

    Gives the endpoint real numbers to serve: a small Porto-like system is
    trained offline, then fresh sparsified trips stream through it — with
    a mild chaos scenario and per-trajectory deadlines installed, so the
    degradation ladder actually runs and ``/healthz`` flips between
    ``ok`` and ``degraded`` as the windowed degraded rate crosses its
    threshold.
    """
    import time

    from repro.core.kamel import Kamel
    from repro.core.config import KamelConfig
    from repro.core.streaming import StreamingImputationService, StreamingConfig
    from repro.resilience import ChaosConfig, ChaosMonkey, chaos_scope
    from repro.roadnet import SimulatorConfig, TrajectorySimulator
    from repro.roadnet.datasets import make_porto_like

    print("training the demo system ...", file=sys.stderr)
    dataset = make_porto_like(n_trajectories=200)
    train, _ = dataset.split()
    system = Kamel(
        KamelConfig(trajectory_deadline_s=0.5, breaker_recovery_s=2.0)
    ).fit(train)
    service = StreamingImputationService(
        system,
        StreamingConfig(alert_failure_rate=0.5, alert_degraded_rate=0.25),
    )
    feed_sim = TrajectorySimulator(
        dataset.network,
        SimulatorConfig(sample_interval_s=15.0, min_trip_length_m=900.0, seed=999),
    )
    monkey = ChaosMonkey(
        ChaosConfig(seed=999, failure_rate=0.15, latency_rate=0.05, latency_s=0.02)
    )
    print(
        "demo stream running with chaos (15% faults, 5% latency spikes); "
        "watch /healthz flip to degraded (Ctrl-C to stop)",
        file=sys.stderr,
    )
    with chaos_scope(monkey, system=system, service=service):
        for trajectory in feed_sim.stream(id_prefix="demo"):
            if deadline is not None and time.monotonic() >= deadline:
                break
            service.process(trajectory.sparsify(800.0))


def _cmd_chaos(args: argparse.Namespace) -> int:
    """Run a seeded fault-injection scenario and report how the system held up."""
    from collections import Counter

    from repro.core.config import KamelConfig
    from repro.core.kamel import Kamel
    from repro.core.streaming import StreamingConfig, StreamingImputationService
    from repro.resilience import ChaosConfig, ChaosMonkey, chaos_scope
    from repro.roadnet.datasets import make_porto_like

    print("training the chaos-target system ...", file=sys.stderr)
    dataset = make_porto_like(n_trajectories=args.train_trajectories)
    train, test = dataset.split()
    config = KamelConfig(
        trajectory_deadline_s=(
            args.deadline_ms / 1000.0 if args.deadline_ms else None
        ),
        breaker_recovery_s=0.2,
    )
    system = Kamel(config).fit(train)
    service = StreamingImputationService(system, StreamingConfig())
    feed = [t.sparsify(args.sparseness) for t in test[: args.trajectories]]

    monkey = ChaosMonkey(
        ChaosConfig(
            seed=args.seed,
            failure_rate=args.failure_rate,
            latency_rate=args.latency_rate,
            latency_s=args.latency_ms / 1000.0,
        )
    )
    print(
        f"streaming {len(feed)} trajectories under chaos "
        f"(seed={args.seed}, faults={args.failure_rate:.0%}, "
        f"latency={args.latency_rate:.0%} x {args.latency_ms:.0f}ms) ...",
        file=sys.stderr,
    )
    rungs: Counter = Counter()
    with chaos_scope(monkey, system=system, service=service):
        for trajectory in feed:
            for result in service.process(trajectory):
                rungs.update(result.rung_counts)

    stats = service.stats
    guards = system.guards
    report = {
        "submitted": len(feed),
        "processed": stats.trajectories_in,
        "quarantined": stats.quarantined,
        "segments": stats.segments,
        "failure_rate": round(stats.failure_rate, 4),
        "degraded_rate": round(stats.degraded_rate, 4),
        "rungs": dict(sorted(rungs.items())),
        "chaos": monkey.report.to_dict(),
        "retries": guards.lookup_retry.total_retries
        + guards.inference_retry.total_retries,
        "breaker_trips": guards.lookup_breaker.open_count
        + guards.inference_breaker.open_count,
        "mean_latency_ms": round(stats.mean_latency_ms, 2),
    }
    if args.json:
        print(json.dumps(report, indent=2))
    else:
        rows = [
            ["trajectories submitted", str(report["submitted"])],
            ["trajectories processed", str(report["processed"])],
            ["trajectories quarantined", str(report["quarantined"])],
            ["segments imputed", str(report["segments"])],
            ["failure rate (linear only)", f"{stats.failure_rate:.1%}"],
            ["degraded rate (below full)", f"{stats.degraded_rate:.1%}"],
            *[
                [f"rung: {name}", str(count)]
                for name, count in sorted(rungs.items())
            ],
            ["injected faults", str(monkey.report.total_faults)],
            ["injected delays", str(monkey.report.total_delays)],
            ["retries", str(report["retries"])],
            ["breaker trips", str(report["breaker_trips"])],
            ["mean latency (ms)", f"{stats.mean_latency_ms:.2f}"],
        ]
        print(render_table(["property", "value"], rows))
    lost = len(feed) - stats.trajectories_in
    if lost:
        print(f"ERROR: {lost} trajectories lost", file=sys.stderr)
        return 1
    return 0


def _load_trace_roots(path: str) -> list:
    """Span trees from a file: a flight payload (``--flight-out`` /
    ``/slow``), a single span-tree JSON object, or span JSONL."""
    from repro.obs import Span

    with open(path) as handle:
        text = handle.read()
    if text.lstrip().startswith("{"):
        doc = json.loads(text)
        if "slowest" in doc:
            return [
                Span.from_dict(span_dict)
                for record in doc["slowest"]
                for span_dict in record.get("spans") or []
            ]
        if "traceEvents" in doc:
            raise ValueError(
                "chrome trace-event files flatten the span trees; "
                "use a flight payload (--flight-out or /slow) or a jsonl export"
            )
        return [Span.from_dict(doc)]
    return [
        Span.from_dict(json.loads(line))
        for line in text.splitlines()
        if line.strip()
    ]


def _cmd_trace(args: argparse.Namespace) -> int:
    """Run a subcommand with tracing on (or load an existing export),
    filter by trace id if asked, then export the span trees."""
    from repro.obs import clear_spans, enable_tracing, finished_spans
    from repro.obs.export import chrome_trace_json, spans_to_jsonl

    rest = list(args.rest)
    if rest and rest[0] == "--":
        rest = rest[1:]
    rc = 0
    if args.from_file:
        try:
            roots = _load_trace_roots(args.from_file)
        except (OSError, ValueError, KeyError) as exc:
            print(f"error: cannot load spans from {args.from_file}: {exc}", file=sys.stderr)
            return 2
    else:
        if not rest:
            print(
                "usage: kamel trace [--export chrome|jsonl|text] [-o PATH] "
                "[--trace-id ID] -- <command ...>\n"
                "       kamel trace --from flight.json [--trace-id ID]",
                file=sys.stderr,
            )
            return 2
        nested = build_parser().parse_args(rest)
        enable_tracing()
        clear_spans()
        rc = nested.func(nested)
        roots = finished_spans()
    if args.trace_id:
        roots = [
            root
            for root in roots
            if any(s.trace_id == args.trace_id for s in root.walk())
        ]
        if not roots:
            print(
                f"no span trees carry trace id {args.trace_id}", file=sys.stderr
            )
            return rc or 1
    if args.export == "chrome":
        rendered = chrome_trace_json(roots) + "\n"
    elif args.export == "jsonl":
        rendered = spans_to_jsonl(roots)
    else:
        rendered = "\n".join(root.render() for root in roots) + "\n"
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(rendered)
        print(
            f"wrote {len(roots)} span tree(s) to {args.output} "
            f"({args.export} format)",
            file=sys.stderr,
        )
    else:
        print(rendered, end="")
    return rc


def _load_flight_payload(source: str) -> dict:
    """A flight-recorder payload from a file or a live ``/slow`` route."""
    if source.startswith(("http://", "https://")):
        from urllib.request import urlopen

        url = source
        if not url.rstrip("/").endswith("/slow"):
            url = url.rstrip("/") + "/slow"
        with urlopen(url) as response:
            return json.loads(response.read().decode("utf-8"))
    with open(source) as handle:
        return json.load(handle)


def _format_stage_ms(value) -> str:
    return f"{float(value) * 1000.0:.1f}" if value is not None else "-"


def _cmd_tail(args: argparse.Namespace) -> int:
    """Render a flight-recorder payload: the p50/p99 stage-attribution
    table plus the slowest retained requests."""
    from repro.obs.flight import STAGES

    try:
        payload = _load_flight_payload(args.source)
    except (OSError, ValueError) as exc:
        print(
            f"error: cannot read flight payload from {args.source}: {exc}",
            file=sys.stderr,
        )
        return 2
    if args.json:
        print(json.dumps(payload, indent=2, default=float))
        return 0
    stages = payload.get("stages") or {}
    slowest = payload.get("slowest") or []
    print(
        f"flight recorder: {payload.get('recorded_total', 0)} requests recorded, "
        f"{len(slowest)} retained (capacity {payload.get('capacity', '?')})"
    )
    ordered = [s for s in STAGES if s in stages]
    ordered += sorted(s for s in stages if s not in STAGES)
    rows = []
    for stage in ordered:
        row = stages[stage] or {}
        rows.append(
            [
                stage,
                str(row.get("count", 0)),
                _format_stage_ms(row.get("mean")),
                _format_stage_ms(row.get("p50")),
                _format_stage_ms(row.get("p99")),
                _format_stage_ms(row.get("max")),
                str(row.get("exemplar_trace_id", "-")),
            ]
        )
    if rows:
        print(
            render_table(
                ["stage", "count", "mean ms", "p50 ms", "p99 ms", "max ms", "worst trace"],
                rows,
            )
        )
    if slowest:
        print()
        srows = [
            [
                str(record.get("trace_id", "?")),
                str(record.get("traj_id", "?")),
                f"{float(record.get('latency_s') or 0.0) * 1000.0:.1f}",
                str(record.get("dominant_stage", "?")),
                str(record.get("shard", "-")),
                str(record.get("error") or ""),
            ]
            for record in slowest[: args.slowest]
        ]
        print(
            render_table(
                ["trace", "trajectory", "latency ms", "dominant stage", "shard", "error"],
                srows,
            )
        )
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    """Run a subcommand under the hierarchical profiler, then report."""
    from repro.obs.profile import Profiler

    rest = list(args.rest)
    if rest and rest[0] == "--":
        rest = rest[1:]
    if not rest:
        print(
            "usage: kamel profile [--format table|collapsed|svg|json] "
            "[-o PATH] -- <command ...>",
            file=sys.stderr,
        )
        return 2
    nested = build_parser().parse_args(rest)
    with Profiler(capture_memory=not args.no_memory) as prof:
        rc = nested.func(nested)
    profile = prof.profile
    assert profile is not None
    if args.format == "collapsed":
        rendered = profile.collapsed(value=args.weight)
    elif args.format == "svg":
        rendered = profile.render_flame()
    elif args.format == "json":
        rendered = json.dumps(profile.to_dict(), indent=2, default=float) + "\n"
    else:
        rendered = profile.render_table() + "\n"
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(rendered)
        print(f"wrote {args.format} profile to {args.output}", file=sys.stderr)
    else:
        print(rendered, end="")
    return rc


def _render_environment(doc: dict) -> str:
    env = doc.get("environment") or {}
    parts = [f"{k}={v}" for k, v in env.items() if v is not None]
    repeats = doc.get("repeats")
    if repeats:
        parts.append(f"repeats={repeats}")
    return ", ".join(parts) if parts else "(no environment recorded)"


def _cmd_bench(args: argparse.Namespace) -> int:
    """Run a benchmark suite N times; snapshot, compare, maybe re-baseline."""
    from repro.bench import (
        SUITES,
        BenchRunner,
        CompareConfig,
        compare_snapshots,
        has_regressions,
        render_deltas,
        write_snapshot,
    )
    from repro.bench.runner import repo_root

    if args.list:
        for name, suite in sorted(SUITES.items()):
            print(f"{name:12s} {suite.description}")
        return 0
    baseline = None
    if args.compare:
        # Validate the baseline *before* spending minutes on the suite.
        from repro.bench.compare import stats_modules

        baseline = _load_snapshot_or_fail(args.compare)
        if baseline is None:
            return 2
        try:
            stats_modules(baseline)
        except ValueError as exc:
            print(f"error: {args.compare!r}: {exc}", file=sys.stderr)
            return 2
    runner = BenchRunner(suite=args.suite, repeats=args.repeats, seed=args.seed)
    print(
        f"running bench suite {args.suite!r} x{args.repeats} "
        f"(each repeat is a fresh pytest subprocess) ...",
        file=sys.stderr,
    )
    doc = runner.run()
    if args.output:
        write_snapshot(args.output, doc)
        print(f"wrote bench snapshot to {args.output}", file=sys.stderr)
    rc = 0
    if baseline is not None:
        config = CompareConfig(
            timing_rel_tol=args.timing_tol, count_rel_tol=args.count_tol
        )
        deltas = compare_snapshots(baseline, doc, config)
        print(f"baseline: {_render_environment(baseline)}")
        print(f"current:  {_render_environment(doc)}")
        print()
        print(render_deltas(deltas, include_unchanged=args.verbose))
        if has_regressions(deltas):
            regressed = [d for d in deltas if d.classification == "regressed"]
            print(
                f"PERF GATE FAILED: {len(regressed)} regressed metric(s)",
                file=sys.stderr,
            )
            rc = 1
        else:
            print("perf gate passed: no regressions", file=sys.stderr)
    if args.update_baseline:
        baseline_path = repo_root() / "BENCH_observability.json"
        write_snapshot(baseline_path, doc)
        print(f"updated baseline {baseline_path}", file=sys.stderr)
    if not (args.compare or args.update_baseline or args.output):
        print(json.dumps(doc, indent=2, default=float))
    return rc


def _cmd_quality(args: argparse.Namespace) -> int:
    """Measure confidence calibration on a porto-like workload."""
    from repro.core.config import KamelConfig
    from repro.core.kamel import Kamel
    from repro.eval.harness import calibrate
    from repro.obs.quality import quality_report

    scale = Scale.full() if args.full else Scale.small()
    workload = porto_workload(scale).with_sparseness(args.sparseness)
    print("training the quality-demo system ...", file=sys.stderr)
    system = Kamel(KamelConfig(maxgap_m=workload.maxgap_m)).fit(list(workload.train))
    system.enable_quality_observability()
    results = system.impute_batch(list(workload.test_sparse))
    ledger = calibrate(
        workload,
        results,
        tracker=system.quality_tracker,
        grid=system.tokenizer.grid,
        bins=args.bins,
    )
    rows = []
    for row in ledger.rows():
        if not row.count and not args.verbose:
            continue
        rows.append(
            [
                f"[{row.lower:.1f}, {row.upper:.1f})",
                str(row.count),
                f"{row.mean_confidence:.3f}" if row.count else "-",
                f"{row.mean_accuracy:.3f}" if row.count else "-",
                f"{row.gap:.3f}" if row.count else "-",
            ]
        )
    print(
        render_table(
            ["confidence bin", "count", "mean conf", "mean acc", "gap"], rows
        )
    )
    print(f"ECE: {ledger.ece():.4f} over {ledger.total} scored segments")
    if args.heatmap:
        from repro.viz.heatmap import write_heatmap_svg

        spatial = system.quality_tracker.spatial
        write_heatmap_svg(
            args.heatmap,
            spatial.quality_scores(),
            system.tokenizer.grid,
            counts=spatial.point_counts(),
        )
        print(f"wrote quality heatmap to {args.heatmap}", file=sys.stderr)
    if args.quality_out:
        with open(args.quality_out, "w") as handle:
            json.dump(quality_report(), handle, indent=2, default=float)
        print(f"wrote /quality payload to {args.quality_out}", file=sys.stderr)
    return 0


def _cmd_drift(args: argparse.Namespace) -> int:
    """Fit one synthetic city, serve another's traffic, report drift.

    The default run serves traffic from a *different* road layout, so the
    unseen-cell-mass score climbs and the drift monitor breaches;
    ``--control`` serves held-out traffic from the *training* city
    instead, demonstrating the monitor staying green on in-distribution
    load.
    """
    from repro.core.config import KamelConfig
    from repro.core.kamel import Kamel
    from repro.obs.instrument import monitors
    from repro.roadnet import (
        CityConfig,
        SimulatorConfig,
        TrajectorySimulator,
        generate_city,
    )

    print("training on city A ...", file=sys.stderr)
    city_a = generate_city(
        CityConfig(
            width_m=1500.0, height_m=1500.0, block_m=250.0,
            n_roundabouts=1, seed=args.seed,
        )
    )
    train = TrajectorySimulator(
        city_a, SimulatorConfig(sample_interval_s=2.0, seed=args.seed + 2)
    ).simulate(args.train_trajectories)
    # Small cells on purpose: drift shows up as serving points landing in
    # cells the training city never visited, which needs a grid fine
    # enough that the two road layouts do not share every cell.
    system = Kamel(KamelConfig(cell_edge_m=25.0, max_model_calls=200)).fit(train)
    system.enable_quality_observability(min_observations=args.min_observations)

    if args.control:
        serve_city, label = city_a, "control (training city)"
    else:
        serve_city, label = (
            generate_city(
                CityConfig(
                    width_m=1500.0, height_m=1500.0, block_m=180.0,
                    n_roundabouts=2, seed=args.seed + 8,
                )
            ),
            "shifted (different city)",
        )
    feed = TrajectorySimulator(
        serve_city, SimulatorConfig(sample_interval_s=2.0, seed=args.seed + 99)
    ).simulate(args.trajectories)
    print(f"serving {len(feed)} {label} trajectories ...", file=sys.stderr)
    for trajectory in feed:
        system.impute(trajectory.sparsify(args.sparseness))

    detector = system.drift_detector
    assert detector is not None
    if args.json:
        payload = detector.to_dict()
        payload["monitor"] = monitors().drift.to_dict()
        print(json.dumps(payload, indent=2, default=float))
        return 0
    rows = [
        [name, f"{value:.4f}"] for name, value in sorted(detector.scores.items())
    ]
    rows.append(["window trajectories", str(detector.window_trajectories)])
    rows.append(
        ["drift monitor", "BREACHED" if monitors().drift.breached else "ok"]
    )
    print(render_table(["drift signal", "value"], rows))
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    from repro.io import load_kamel

    system = load_kamel(args.model_dir)
    repo = system.repository
    rows = [
        ["backend", system.config.model_backend],
        ["grid", f"{system.config.grid_type} ({system.tokenizer.grid.edge_length_m:.0f} m)"],
        ["vocabulary", str(len(system.tokenizer.vocabulary))],
        ["stored trajectories", str(len(system.store))],
        ["stored tokens", str(system.store.total_tokens)],
        ["max speed (m/s)", f"{system.max_speed_mps:.1f}" if system.max_speed_mps else "-"],
        ["gap threshold (m)", f"{system.gap_threshold_m:.0f}" if system.gap_threshold_m else "-"],
        ["detokenizer cells", str(system.detokenizer.num_cells)],
    ]
    if system._global_model is not None:
        rows.append(["global model tokens", str(system._global_model.num_training_tokens)])
    if repo is not None and repo.num_models:
        stats = repo.stats()
        rows.append(["single-cell models", str(stats.single_models)])
        rows.append(["neighbor-cell models", str(stats.neighbor_models)])
        rows.append(
            ["models per level", ", ".join(f"L{k}: {v}" for k, v in sorted(stats.models_per_level.items()))]
        )
        rows.append(["model rebuilds", str(stats.rebuilds)])
    print(render_table(["property", "value"], rows))
    return 0


def _serve_feed(args: argparse.Namespace, model_dir: str) -> list:
    """The trajectories ``kamel serve`` will drive through the pool.

    ``--input`` JSONL wins (one journal-style payload per line:
    ``{"traj_id": ..., "points": [[x, y, t], ...]}``); otherwise a demo
    feed is simulated over the training city.
    """
    from repro.resilience.journal import trajectory_from_payload

    if args.input:
        feed = []
        with open(args.input) as handle:
            for line in handle:
                line = line.strip()
                if line:
                    feed.append(trajectory_from_payload(json.loads(line)))
        return feed
    from repro.roadnet import SimulatorConfig, TrajectorySimulator
    from repro.roadnet.datasets import make_porto_like

    dataset = make_porto_like(
        n_trajectories=args.train_trajectories, seed=args.seed
    )
    simulator = TrajectorySimulator(
        dataset.network,
        SimulatorConfig(sample_interval_s=15.0, seed=args.seed + 101),
    )
    dense = simulator.simulate(args.trajectories, id_prefix="demo")
    return [t.sparsify(args.sparseness) for t in dense]


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run a batch through the sharded multi-process serving pool."""
    import pathlib
    import signal
    import tempfile

    from repro.serve import ServeConfig, ServingPool

    def _on_sigterm(signum, frame):
        # Fold SIGTERM into the KeyboardInterrupt path so `kill <pid>`
        # gets the same orderly teardown as Ctrl-C: poison pills, join,
        # escalate — no orphan workers, no stale journal locks.
        raise KeyboardInterrupt

    previous_sigterm = signal.signal(signal.SIGTERM, _on_sigterm)

    if not args.demo and not args.model_dir:
        print("kamel serve needs --model-dir or --demo", file=sys.stderr)
        return 2
    if not args.demo and not args.input:
        print(
            "kamel serve needs --input JSONL (or --demo for synthetic traffic)",
            file=sys.stderr,
        )
        return 2
    cleanup: Optional[tempfile.TemporaryDirectory] = None
    try:
        model_dir = args.model_dir
        if model_dir is None:
            from repro.core.config import KamelConfig
            from repro.core.kamel import Kamel
            from repro.io.serialize import save_kamel
            from repro.roadnet.datasets import make_porto_like

            print("training the demo serving system ...", file=sys.stderr)
            cleanup = tempfile.TemporaryDirectory(prefix="kamel-serve-")
            dataset = make_porto_like(
                n_trajectories=args.train_trajectories, seed=args.seed
            )
            train, _ = dataset.split(seed=1)
            system = Kamel(KamelConfig(max_model_calls=600)).fit(train)
            model_dir = str(pathlib.Path(cleanup.name) / "model")
            save_kamel(system, model_dir)
            del system  # workers load their own lazy copies

        feed = _serve_feed(args, model_dir)
        if not feed:
            print("error: nothing to serve (empty input)", file=sys.stderr)
            return 2
        config = ServeConfig(
            workers=args.workers,
            strategy=args.strategy,
            lru_capacity=args.lru_capacity,
            journal_dir=args.journal_dir,
            metrics_port=args.metrics_port,
            max_queue_depth=args.max_queue_depth,
            admission_policy=args.admission,
            request_deadline_s=(
                args.request_deadline_ms / 1000.0
                if args.request_deadline_ms is not None
                else None
            ),
        )
        pool = ServingPool(model_dir, config)
        print(
            f"serving {len(feed)} trajectories across {args.workers} "
            f"worker(s), strategy={args.strategy} ...",
            file=sys.stderr,
        )
        try:
            pool.start()
            if pool.metrics_server is not None:
                print(
                    f"pool telemetry on {pool.metrics_server.url} "
                    f"(/metrics, /healthz)",
                    file=sys.stderr,
                )
            results = pool.process_all(feed, timeout=args.timeout)
        except KeyboardInterrupt:
            print(
                "\ninterrupted: draining and shutting the pool down ...",
                file=sys.stderr,
            )
            return 130
        finally:
            pool.close()
        if args.output:
            with open(args.output, "w") as handle:
                for traj_id in sorted(results):
                    message = results[traj_id]
                    handle.write(
                        json.dumps(
                            {
                                "traj_id": traj_id,
                                "shard": message["shard"],
                                "trips": message["trips"],
                                "segments": message["segments"],
                                "failed": message["failed"],
                                "degraded": message["degraded"],
                                "error": message["error"],
                            },
                            default=float,
                        )
                        + "\n"
                    )
            print(f"wrote {len(results)} results to {args.output}", file=sys.stderr)
        stats = pool.stats
        rows = [
            ["trajectories submitted", str(stats.submitted)],
            ["trajectories completed", str(stats.completed)],
            ["trajectories lost", str(stats.lost)],
            ["duplicate results", str(stats.duplicates)],
            ["segments imputed", str(stats.segments)],
            ["segments failed", str(stats.failed_segments)],
            ["worker deaths", str(stats.worker_deaths)],
            ["journal replayed", str(stats.journal_replayed)],
            *[
                [f"rung: {name}", str(count)]
                for name, count in sorted(stats.rungs.items())
            ],
        ]
        print(render_table(["property", "value"], rows))
        if stats.lost:
            print(f"ERROR: {stats.lost} trajectories lost", file=sys.stderr)
            return 1
        return 0
    finally:
        signal.signal(signal.SIGTERM, previous_sigterm)
        if cleanup is not None:
            cleanup.cleanup()


def _parse_offered(value: Optional[str]) -> tuple[float, Optional[float]]:
    """``--offered-tps`` accepts an absolute rate ("25") or a capacity
    multiple ("2x"); returns ``(offered_tps, offered_multiplier)``."""
    if value is None:
        return 0.0, None
    text = value.strip().lower()
    try:
        if text.endswith("x"):
            return 0.0, float(text[:-1])
        return float(text), None
    except ValueError:
        raise SystemExit(
            f"error: --offered-tps wants a rate like '25' or a capacity "
            f"multiple like '2x', got {value!r}"
        )


def _cmd_loadtest(args: argparse.Namespace) -> int:
    """Drive synthetic load through the pool; verify, measure, snapshot."""
    from repro.serve import LoadtestConfig, run_loadtest

    offered_tps, offered_multiplier = _parse_offered(args.offered_tps)
    config = LoadtestConfig(
        workers=args.workers,
        trajectories=args.trajectories,
        rate_tps=args.rate,
        sparseness_m=args.sparseness,
        train_trajectories=args.train_trajectories,
        seed=args.seed,
        strategy=args.strategy,
        lru_capacity=args.lru_capacity,
        kill_worker_after=args.kill_worker_after,
        verify=not args.no_verify,
        trace=args.trace or bool(args.trace_out),
        trace_out=args.trace_out,
        flight_out=args.flight_out,
        flight_capacity=args.flight_capacity,
        offered_tps=offered_tps,
        offered_multiplier=offered_multiplier,
        max_queue_depth=args.max_queue_depth,
        admission=args.admission,
        request_deadline_s=(
            args.request_deadline_ms / 1000.0
            if args.request_deadline_ms is not None
            else None
        ),
        brownout=not args.no_brownout,
    )
    mode = "overload" if config.overload else "loadtest"
    print(
        f"{mode}: train {args.train_trajectories} trips, then "
        f"{args.trajectories} trajectories through {args.workers} worker(s) "
        f"{'(verified against single-process)' if config.verify else ''}...",
        file=sys.stderr,
    )
    report = run_loadtest(config, workdir=args.workdir)
    if report.trace_out:
        print(f"wrote merged chrome trace to {report.trace_out}", file=sys.stderr)
    if report.flight_out:
        print(
            f"wrote flight recorder payload to {report.flight_out} "
            f"(inspect with: kamel tail {report.flight_out})",
            file=sys.stderr,
        )
    if args.output:
        from repro.bench import make_snapshot, write_snapshot

        doc = make_snapshot({"serve": [report.bench_metrics()]}, seed=args.seed)
        write_snapshot(args.output, doc)
        print(f"wrote bench snapshot to {args.output}", file=sys.stderr)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, default=float))
    else:
        rows = [
            ["workers", str(report.workers)],
            ["strategy", report.strategy],
            ["trajectories", str(report.trajectories)],
            ["completed", str(report.completed)],
            ["lost", str(report.lost)],
            ["duplicates", str(report.duplicates)],
            ["wall time (s)", f"{report.wall_s:.2f}"],
            ["throughput (traj/s)", f"{report.throughput_tps:.2f}"],
            ["latency p50 (ms)", f"{report.latency_p50_ms:.1f}"],
            ["latency p99 (ms)", f"{report.latency_p99_ms:.1f}"],
            ["segments imputed", str(report.segments)],
            *[
                [f"rung: {name}", str(count)]
                for name, count in sorted(report.rungs.items())
            ],
            ["worker deaths", str(report.worker_deaths)],
            ["journal replayed", str(report.journal_replayed)],
        ]
        if report.overload:
            rows.append(["offered rate (traj/s)", f"{report.offered_tps:.2f}"])
            if report.capacity_tps is not None:
                rows.append(
                    ["measured capacity (traj/s)", f"{report.capacity_tps:.2f}"]
                )
            rows.append(["shed (OverloadError)", str(report.shed)])
            rows.append(["expired in queue", str(report.expired)])
            rows.append(
                [
                    "peak queue depth",
                    f"{report.peak_queue_depth} "
                    f"(bound {report.max_queue_depth}, "
                    f"policy {report.admission})",
                ]
            )
            rows.append(["accounted (no losses)", str(report.accounted)])
            if report.brownout is not None:
                rows.append(
                    [
                        "brownout",
                        f"level {report.brownout['level']}, "
                        f"{len(report.brownout['transitions'])} transition(s), "
                        f"cycle={report.brownout['completed_cycle']}",
                    ]
                )
        for stage, row in report.stages.items():
            if row.get("count") and row.get("p99") is not None:
                rows.append(
                    [f"stage p99: {stage} (ms)", f"{row['p99'] * 1000.0:.1f}"]
                )
        if report.traced_requests:
            rows.append(["traced requests", str(report.traced_requests)])
        if report.verified:
            rows.append(["verified (bit-for-bit)", f"{report.mismatches} mismatches"])
        if report.single_throughput_tps is not None:
            rows.append(
                ["single-process (traj/s)", f"{report.single_throughput_tps:.2f}"]
            )
        if report.speedup_vs_single is not None:
            rows.append(["speedup vs single", f"{report.speedup_vs_single:.2f}x"])
        print(render_table(["property", "value"], rows))
    rc = 0
    if not report.ok:
        print(
            f"LOADTEST FAILED: lost={report.lost} mismatches={report.mismatches} "
            f"completed={report.completed} accounted={report.accounted}",
            file=sys.stderr,
        )
        rc = 1
    if (
        report.max_queue_depth is not None
        and report.peak_queue_depth > report.max_queue_depth
    ):
        print(
            f"LOADTEST FAILED: peak queue depth {report.peak_queue_depth} "
            f"exceeded the configured bound {report.max_queue_depth}",
            file=sys.stderr,
        )
        rc = 1
    if args.min_shed is not None and report.shed < args.min_shed:
        print(
            f"LOADTEST FAILED: shed {report.shed} requests, "
            f"--min-shed wants >= {args.min_shed} (pool was not actually "
            f"overloaded?)",
            file=sys.stderr,
        )
        rc = 1
    if args.require_brownout_cycle and not (
        report.brownout is not None and report.brownout["completed_cycle"]
    ):
        print(
            "LOADTEST FAILED: --require-brownout-cycle wants a full "
            "step-down/step-up cycle, got "
            f"{report.brownout and report.brownout['transitions']}",
            file=sys.stderr,
        )
        rc = 1
    if args.min_throughput and report.throughput_tps < args.min_throughput:
        print(
            f"LOADTEST FAILED: throughput {report.throughput_tps:.2f} traj/s "
            f"below --min-throughput {args.min_throughput}",
            file=sys.stderr,
        )
        rc = 1
    if args.max_p99_ms and report.latency_p99_ms > args.max_p99_ms:
        print(
            f"LOADTEST FAILED: p99 latency {report.latency_p99_ms:.1f} ms "
            f"above --max-p99-ms {args.max_p99_ms}",
            file=sys.stderr,
        )
        rc = 1
    return rc


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="kamel",
        description="KAMEL reproduction: trajectory imputation experiments",
    )
    parser.add_argument(
        "--log-level",
        choices=("DEBUG", "INFO", "WARNING", "ERROR", "CRITICAL"),
        default=None,
        help="enable structured logging at this level",
    )
    parser.add_argument(
        "--log-format",
        choices=("kv", "json"),
        default="kv",
        help="structured log line format (default: key=value)",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help="write the metrics-registry JSON snapshot here on exit",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="collect span trees and print them to stderr on exit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list-figures", help="list reproducible paper figures")
    p_list.set_defaults(func=_cmd_list_figures)

    p_fig = sub.add_parser("figure", help="run one paper figure, print JSON series")
    p_fig.add_argument("name", help="figure id, e.g. fig9 (see list-figures)")
    p_fig.add_argument("--full", action="store_true", help="full-scale run (slow)")
    p_fig.set_defaults(func=_cmd_figure)

    p_cmp = sub.add_parser("compare", help="compare methods on one workload")
    p_cmp.add_argument("--dataset", choices=("porto", "jakarta"), default="porto")
    p_cmp.add_argument("--sparseness", type=float, default=800.0, help="imposed gap (m)")
    p_cmp.add_argument("--delta", type=float, default=None, help="accuracy threshold (m)")
    p_cmp.add_argument(
        "--methods",
        nargs="+",
        default=["KAMEL", "TrImpute", "Linear", "MapMatch"],
        choices=["KAMEL", "TrImpute", "Linear", "MapMatch"],
    )
    p_cmp.add_argument("--full", action="store_true")
    p_cmp.set_defaults(func=_cmd_compare)

    p_imp = sub.add_parser(
        "impute", help="train on a CSV of GPS fixes and impute another"
    )
    p_imp.add_argument("--train", required=True, help="training CSV (traj_id,lat,lon,t)")
    p_imp.add_argument("--input", required=True, help="sparse CSV to impute")
    p_imp.add_argument("--output", required=True, help="dense CSV to write")
    p_imp.add_argument("--cell-size", type=float, default=75.0, help="hexagon edge (m)")
    p_imp.add_argument("--maxgap", type=float, default=100.0, help="maxgap (m)")
    p_imp.set_defaults(func=_cmd_impute)

    p_rep = sub.add_parser("report", help="regenerate figures as a markdown report")
    p_rep.add_argument("--figures", nargs="*", help="figure ids (default: all)")
    p_rep.add_argument("--output", help="write to a file instead of stdout")
    p_rep.add_argument("--full", action="store_true")
    p_rep.set_defaults(func=_cmd_report)

    p_ins = sub.add_parser("inspect", help="summarize a saved model directory")
    p_ins.add_argument("model_dir", help="directory written by Kamel.save()")
    p_ins.set_defaults(func=_cmd_inspect)

    p_srv = sub.add_parser(
        "serve-metrics",
        help="serve /metrics (Prometheus), /healthz, /spans over HTTP",
    )
    p_srv.add_argument("--port", type=int, default=9100, help="bind port (0 = ephemeral)")
    p_srv.add_argument("--host", default="127.0.0.1", help="bind address")
    p_srv.add_argument(
        "--demo",
        action="store_true",
        help="impute a synthetic live stream while serving, so the endpoint has data",
    )
    p_srv.add_argument(
        "--duration", type=float, default=None, metavar="S",
        help="stop after S seconds (default: run until Ctrl-C)",
    )
    p_srv.set_defaults(func=_cmd_serve_metrics)

    p_serve = sub.add_parser(
        "serve",
        help="run a batch through the sharded multi-worker serving pool",
    )
    p_serve.add_argument(
        "--model-dir", default=None, help="directory written by Kamel.save()"
    )
    p_serve.add_argument(
        "--demo",
        action="store_true",
        help="train a synthetic system and feed instead of --model-dir/--input",
    )
    p_serve.add_argument(
        "--workers", type=int, default=2, help="worker processes (default 2)"
    )
    p_serve.add_argument(
        "--strategy",
        choices=("hash", "range", "round_robin"),
        default="hash",
        help="partition routing strategy (default: hash-by-root-cell)",
    )
    p_serve.add_argument(
        "--lru-capacity", type=int, default=64,
        help="resident models per worker (default 64)",
    )
    p_serve.add_argument(
        "--input", default=None,
        help="JSONL of trajectory payloads to impute "
        '({"traj_id": ..., "points": [[x, y, t], ...]})',
    )
    p_serve.add_argument(
        "--output", default=None, help="write result JSONL here"
    )
    p_serve.add_argument(
        "--journal-dir", default=None,
        help="per-shard write-ahead journals (enables crash recovery)",
    )
    p_serve.add_argument(
        "--metrics-port", type=int, default=None, metavar="PORT",
        help="serve aggregated /metrics + /healthz here (0 = ephemeral)",
    )
    p_serve.add_argument(
        "--timeout", type=float, default=None, metavar="S",
        help="overall drain deadline in seconds (default: pool config)",
    )
    p_serve.add_argument(
        "--max-queue-depth", type=int, default=None, metavar="N",
        help="bound each shard's admission queue (default: unbounded)",
    )
    p_serve.add_argument(
        "--admission",
        choices=("block", "shed", "shed-oldest"),
        default="shed",
        help="what a full shard queue does to new work (default: shed; "
        "needs --max-queue-depth to matter)",
    )
    p_serve.add_argument(
        "--request-deadline-ms", type=float, default=None, metavar="MS",
        help="per-request deadline; expired-in-queue tasks are dropped",
    )
    p_serve.add_argument(
        "--trajectories", type=int, default=40,
        help="demo feed size (with --demo; default 40)",
    )
    p_serve.add_argument(
        "--train-trajectories", type=int, default=120,
        help="demo training set size (with --demo; default 120)",
    )
    p_serve.add_argument(
        "--sparseness", type=float, default=800.0, help="demo imposed gap (m)"
    )
    p_serve.add_argument("--seed", type=int, default=7, help="demo RNG seed")
    p_serve.set_defaults(func=_cmd_serve)

    p_load = sub.add_parser(
        "loadtest",
        help="drive synthetic load through the pool; verify + measure + snapshot",
    )
    p_load.add_argument(
        "--workers", type=int, default=4, help="worker processes (default 4)"
    )
    p_load.add_argument(
        "--trajectories", type=int, default=200,
        help="synthetic trajectories to serve (default 200)",
    )
    p_load.add_argument(
        "--rate", type=float, default=0.0, metavar="TPS",
        help="target submission rate, trajectories/sec (0 = flood; default 0)",
    )
    p_load.add_argument(
        "--sparseness", type=float, default=800.0, help="imposed gap (m)"
    )
    p_load.add_argument(
        "--train-trajectories", type=int, default=200,
        help="synthetic training set size (default 200)",
    )
    p_load.add_argument("--seed", type=int, default=7, help="workload RNG seed")
    p_load.add_argument(
        "--strategy",
        choices=("hash", "range", "round_robin"),
        default="hash",
        help="partition routing strategy (default: hash-by-root-cell)",
    )
    p_load.add_argument(
        "--lru-capacity", type=int, default=64,
        help="resident models per worker (default 64)",
    )
    p_load.add_argument(
        "--kill-worker-after", type=int, default=None, metavar="N",
        help="chaos: shard 0 dies on its Nth task (exercises journal replay)",
    )
    p_load.add_argument(
        "--no-verify",
        action="store_true",
        help="skip the single-process baseline + bit-for-bit comparison",
    )
    p_load.add_argument(
        "--workdir", default=None,
        help="keep the saved model + journals here (default: temp dir)",
    )
    p_load.add_argument(
        "--output", "-o", default=None, metavar="PATH",
        help="write a schema-v2 bench snapshot here (e.g. BENCH_serve.json)",
    )
    p_load.add_argument(
        "--trace",
        action="store_true",
        help="workers ship span trees with every result (stage attribution "
        "gets model_load/detokenize splits; required for --trace-out)",
    )
    p_load.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="write the merged multi-worker Chrome trace here (implies --trace)",
    )
    p_load.add_argument(
        "--flight-out", default=None, metavar="PATH",
        help="write the flight recorder payload here (what 'kamel tail' reads)",
    )
    p_load.add_argument(
        "--flight-capacity", type=int, default=64, metavar="N",
        help="slowest requests the flight recorder retains (default 64)",
    )
    p_load.add_argument(
        "--offered-tps", default=None, metavar="RATE",
        help="overload mode: offered rate, either absolute ('25') or a "
        "multiple of measured capacity ('2x'); enables bounded admission "
        "queues + deadlines + brownout and accounts for every submitted "
        "trajectory as completed/shed/expired",
    )
    p_load.add_argument(
        "--max-queue-depth", type=int, default=None, metavar="N",
        help="per-shard admission bound (default 8 in overload mode)",
    )
    p_load.add_argument(
        "--admission",
        choices=("block", "shed", "shed-oldest"),
        default="shed",
        help="what a full shard queue does to new work (default: shed)",
    )
    p_load.add_argument(
        "--request-deadline-ms", type=float, default=None, metavar="MS",
        help="per-request deadline; expired-in-queue tasks are dropped by "
        "workers, thin budgets finish on cheaper ladder rungs",
    )
    p_load.add_argument(
        "--no-brownout",
        action="store_true",
        help="overload mode without the brownout controller",
    )
    p_load.add_argument(
        "--min-shed", type=int, default=None, metavar="N",
        help="fail (exit 1) if fewer than N requests were shed (asserts "
        "the pool was genuinely overloaded)",
    )
    p_load.add_argument(
        "--require-brownout-cycle",
        action="store_true",
        help="fail (exit 1) unless the brownout controller stepped down "
        "AND recovered to level 0",
    )
    p_load.add_argument(
        "--min-throughput", type=float, default=None, metavar="TPS",
        help="fail (exit 1) below this sustained throughput",
    )
    p_load.add_argument(
        "--max-p99-ms", type=float, default=None, metavar="MS",
        help="fail (exit 1) above this p99 latency",
    )
    p_load.add_argument("--json", action="store_true", help="machine-readable report")
    p_load.set_defaults(func=_cmd_loadtest)

    p_chaos = sub.add_parser(
        "chaos",
        help="run a seeded fault-injection scenario against a demo system",
    )
    p_chaos.add_argument("--seed", type=int, default=0, help="chaos RNG seed")
    p_chaos.add_argument(
        "--failure-rate", type=float, default=0.3,
        help="probability a model lookup / inference call fails (default 0.3)",
    )
    p_chaos.add_argument(
        "--latency-rate", type=float, default=0.1,
        help="probability a hooked call sleeps first (default 0.1)",
    )
    p_chaos.add_argument(
        "--latency-ms", type=float, default=10.0, help="injected sleep (ms)"
    )
    p_chaos.add_argument(
        "--deadline-ms", type=float, default=250.0, metavar="MS",
        help="per-trajectory impute deadline (0 disables; default 250)",
    )
    p_chaos.add_argument(
        "--trajectories", type=int, default=30, help="test trajectories to stream"
    )
    p_chaos.add_argument(
        "--train-trajectories", type=int, default=120,
        help="synthetic training set size",
    )
    p_chaos.add_argument(
        "--sparseness", type=float, default=800.0, help="imposed gap (m)"
    )
    p_chaos.add_argument("--json", action="store_true", help="machine-readable report")
    p_chaos.set_defaults(func=_cmd_chaos)

    p_trc = sub.add_parser(
        "trace",
        help="run a subcommand with tracing on, export spans (Perfetto/JSONL)",
    )
    p_trc.add_argument(
        "--export",
        choices=("chrome", "jsonl", "text"),
        default="chrome",
        help="chrome = trace-event JSON loadable in Perfetto (default)",
    )
    p_trc.add_argument("--output", "-o", default=None, help="write here instead of stdout")
    p_trc.add_argument(
        "--trace-id", default=None, metavar="ID",
        help="export only span trees carrying this request id "
        "(e.g. an exemplar from 'kamel tail')",
    )
    p_trc.add_argument(
        "--from", dest="from_file", default=None, metavar="PATH",
        help="load span trees from a file (flight payload JSON or span "
        "JSONL) instead of running a command",
    )
    p_trc.add_argument(
        "rest",
        nargs=argparse.REMAINDER,
        metavar="command ...",
        help="the kamel subcommand to run traced, e.g. -- compare --dataset porto",
    )
    p_trc.set_defaults(func=_cmd_trace)

    p_tail = sub.add_parser(
        "tail",
        help="p50/p99 stage-attribution table from a flight recorder "
        "(file or live /slow route)",
    )
    p_tail.add_argument(
        "source",
        help="flight payload: a JSON file (loadtest --flight-out) or a "
        "pool URL, e.g. http://127.0.0.1:9101/slow",
    )
    p_tail.add_argument(
        "--slowest", type=int, default=10, metavar="N",
        help="slow-request rows to print (default 10)",
    )
    p_tail.add_argument("--json", action="store_true", help="print the raw payload")
    p_tail.set_defaults(func=_cmd_tail)

    p_sts = sub.add_parser(
        "stats", help="summarize a metrics snapshot (from --metrics-out)"
    )
    p_sts.add_argument(
        "metrics_json",
        nargs="*",
        help="snapshot file; two files print a side-by-side delta table; "
        "omit for this process's registry",
    )
    p_sts.add_argument(
        "--catalog", action="store_true", help="list every known metric and its meaning"
    )
    p_sts.set_defaults(func=_cmd_stats)

    p_prof = sub.add_parser(
        "profile",
        help="run a subcommand under the stage profiler (cost ledger, flame)",
    )
    p_prof.add_argument(
        "--format",
        choices=("table", "collapsed", "svg", "json"),
        default="table",
        help="table = stage ledger (default); collapsed = flamegraph-tool "
        "input; svg = dependency-free flame view; json = machine-readable",
    )
    p_prof.add_argument(
        "--weight",
        choices=("wall", "calls"),
        default="wall",
        help="collapsed-stack sample unit: self wall-time in µs or span counts",
    )
    p_prof.add_argument(
        "--no-memory",
        action="store_true",
        help="skip tracemalloc peak-memory capture (lower overhead)",
    )
    p_prof.add_argument("--output", "-o", default=None, help="write here instead of stdout")
    p_prof.add_argument(
        "rest",
        nargs=argparse.REMAINDER,
        metavar="command ...",
        help="the kamel subcommand to profile, e.g. -- compare --dataset porto",
    )
    p_prof.set_defaults(func=_cmd_profile)

    p_qual = sub.add_parser(
        "quality",
        help="measure confidence calibration (ECE table, heatmap, /quality JSON)",
    )
    p_qual.add_argument(
        "--sparseness", type=float, default=800.0, help="imposed gap (m)"
    )
    p_qual.add_argument(
        "--bins", type=int, default=10, help="confidence bins (default 10)"
    )
    p_qual.add_argument(
        "--heatmap", metavar="SVG",
        help="write the per-cell quality choropleth here",
    )
    p_qual.add_argument(
        "--quality-out", metavar="JSON",
        help="write the full /quality payload here",
    )
    p_qual.add_argument(
        "--verbose", action="store_true", help="include empty confidence bins"
    )
    p_qual.add_argument("--full", action="store_true", help="full-scale run (slow)")
    p_qual.set_defaults(func=_cmd_quality)

    p_drift = sub.add_parser(
        "drift",
        help="demo input-drift detection: train city A, serve shifted traffic",
    )
    p_drift.add_argument(
        "--control",
        action="store_true",
        help="serve held-out traffic from the training city instead (stays green)",
    )
    p_drift.add_argument("--seed", type=int, default=3, help="city/traffic RNG seed")
    p_drift.add_argument(
        "--train-trajectories", type=int, default=60, help="training trips"
    )
    p_drift.add_argument(
        "--trajectories", type=int, default=40, help="serving trips to impute"
    )
    p_drift.add_argument(
        "--sparseness", type=float, default=800.0, help="imposed gap (m)"
    )
    p_drift.add_argument(
        "--min-observations", type=int, default=8,
        help="trajectories in the window before scoring (default 8)",
    )
    p_drift.add_argument("--json", action="store_true", help="machine-readable report")
    p_drift.set_defaults(func=_cmd_drift)

    p_bench = sub.add_parser(
        "bench",
        help="run a benchmark suite N times, snapshot, compare to a baseline",
    )
    p_bench.add_argument(
        "suite",
        nargs="?",
        default="counting",
        help="suite name (see --list; default: counting)",
    )
    p_bench.add_argument(
        "--repeats", type=int, default=3, help="independent suite runs (default 3)"
    )
    p_bench.add_argument("--seed", type=int, default=0, help="recorded suite seed")
    p_bench.add_argument(
        "--compare",
        metavar="BASELINE",
        default=None,
        help="classify each metric against this snapshot; exit 1 on regression",
    )
    p_bench.add_argument(
        "--update-baseline",
        action="store_true",
        help="write the new snapshot to BENCH_observability.json at the repo root",
    )
    p_bench.add_argument(
        "--output", "-o", default=None, help="also write the snapshot here"
    )
    p_bench.add_argument(
        "--timing-tol",
        type=float,
        default=0.35,
        metavar="FRAC",
        help="relative tolerance for wall-time metrics (default 0.35; raise "
        "when comparing across machines)",
    )
    p_bench.add_argument(
        "--count-tol",
        type=float,
        default=0.05,
        metavar="FRAC",
        help="relative tolerance for counters and exact metrics (default 0.05)",
    )
    p_bench.add_argument(
        "--verbose", action="store_true", help="include unchanged metrics in the table"
    )
    p_bench.add_argument(
        "--list", action="store_true", help="list the available suites and exit"
    )
    p_bench.set_defaults(func=_cmd_bench)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.log_level:
        configure_logging(level=args.log_level, fmt=args.log_format)
    if args.trace:
        enable_tracing()
    epilogue_rc = 0
    try:
        rc = args.func(args)
    finally:
        # Snapshots/spans are written even when the subcommand raised, but
        # an unwritable --metrics-out path must be a clean non-zero exit,
        # not a traceback out of a finally block.
        if args.metrics_out:
            try:
                get_registry().write_json(args.metrics_out)
                print(
                    f"wrote metrics snapshot to {args.metrics_out}", file=sys.stderr
                )
            except OSError as exc:
                print(
                    f"error: cannot write metrics snapshot to "
                    f"{args.metrics_out!r}: {exc}",
                    file=sys.stderr,
                )
                epilogue_rc = 2
        if args.trace:
            for root in finished_spans():
                print(root.render(), file=sys.stderr)
    return epilogue_rc or rc


if __name__ == "__main__":
    raise SystemExit(main())
