"""Model-level evaluation of masked LMs: hit-rate and pseudo-perplexity.

System metrics (recall/precision) measure the whole pipeline; these
measure just the "BERT black box": mask each held-out token in turn and
ask the model for it. Useful for comparing backends, grid sizes, or
training recipes without running the imputation search.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.errors import EmptyInputError
from repro.mlm.base import MaskedModel


@dataclass(frozen=True)
class MaskedEvalResult:
    """Held-out masked-prediction quality."""

    top1_accuracy: float
    topk_accuracy: float
    k: int
    pseudo_perplexity: float
    """exp(mean negative log probability assigned to the true token);
    tokens absent from the candidate list are charged the floor prob."""
    num_predictions: int


def evaluate_masked_model(
    model: MaskedModel,
    sequences: Sequence[Sequence[int]],
    top_k: int = 10,
    max_predictions: Optional[int] = 2000,
    floor_probability: float = 1e-4,
    seed: int = 0,
) -> MaskedEvalResult:
    """Mask every interior token of ``sequences`` and score the model.

    ``max_predictions`` caps the work by uniform subsampling of
    (sequence, position) pairs — enough for stable estimates.
    """
    if top_k < 1:
        raise ValueError(f"top_k must be >= 1, got {top_k!r}")
    if not 0.0 < floor_probability < 1.0:
        raise ValueError("floor_probability must be in (0, 1)")

    slots = [
        (s, i)
        for s, seq in enumerate(sequences)
        for i in range(1, len(seq) - 1)
    ]
    if not slots:
        raise EmptyInputError("no maskable positions in the given sequences")
    if max_predictions is not None and len(slots) > max_predictions:
        rng = np.random.default_rng(seed)
        picked = rng.choice(len(slots), size=max_predictions, replace=False)
        slots = [slots[int(i)] for i in picked]

    top1 = topk = 0
    log_prob_sum = 0.0
    for s, i in slots:
        seq = list(sequences[s])
        true_token = seq[i]
        predictions = model.predict_masked(seq, i, top_k=top_k)
        ranked = [token for token, _ in predictions]
        if ranked and ranked[0] == true_token:
            top1 += 1
        if true_token in ranked:
            topk += 1
            probability = dict(predictions)[true_token]
        else:
            probability = floor_probability
        log_prob_sum += math.log(max(probability, floor_probability))

    n = len(slots)
    return MaskedEvalResult(
        top1_accuracy=top1 / n,
        topk_accuracy=topk / n,
        k=top_k,
        pseudo_perplexity=math.exp(-log_prob_sum / n),
        num_predictions=n,
    )
