"""A bidirectional context-counting masked model with route tables.

This backend answers the same masked-token queries as the BERT backend by
counting, over the training trajectories, which token appears between
which neighbours. Training records several context templates:

* ``(left1, right1)`` — the token's two immediate neighbours,
* ``("dst", left1, future)`` / ``("rdst", right1, past)`` — the *route*
  tables: which token followed/preceded an anchor on trips that also
  passed a cell up to ``horizon`` steps away (the counting-model analogue
  of BERT attending to the far gap endpoint),
* ``(left2, left1)`` / ``(right1, right2)`` directional bigrams and the
  ``(left1,)`` / ``(right1,)`` unigrams,

falling back to the global unigram distribution when nothing matched.
Prediction multiplies the local transition *policy* by the route *value*
(``scoring="policy_value"``, the default — validated against the additive
``"interpolation"`` mixture in ``benchmarks/bench_counting_scoring.py``).
The backend exists because sweeping every figure of the paper with the
numpy BERT would take hours; system behaviour (candidates + probabilities
feeding the spatial constraints and beam search) is identical in kind.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Sequence

from repro.errors import NotFittedError
from repro.mlm.base import MaskedModel, TokenProb, validate_mask_query

_ContextKey = tuple

# (template name, weight); specific contexts dominate when they have data.
_TEMPLATE_WEIGHTS: dict[str, float] = {
    "l1r1": 6.0,
    "dst": 4.0,
    "rdst": 4.0,
    "l2": 1.5,
    "r2": 1.5,
    "l1": 1.0,
    "r1": 1.0,
}

DEFAULT_HORIZON = 10
"""How far ahead/behind the route tables look during training."""


def _training_contexts(
    tokens: Sequence[int], position: int, horizon: int
) -> list[_ContextKey]:
    """Context keys recorded for the token at ``position`` during training.

    Besides the immediate-neighbour templates, two *route* templates give
    the model the long-range signal that BERT's attention provides:

    * ``("dst", left1, future)`` — the token that followed ``left1`` on
      trips that later (within ``horizon`` steps) passed through ``future``;
    * ``("rdst", right1, past)`` — the token that preceded ``right1`` on
      trips that earlier passed through ``past``.

    At imputation time the masked position sits between the two current
    gap endpoints; querying ``dst``/``rdst`` with that pair retrieves
    "how trips travelling from here toward there actually moved".
    """
    n = len(tokens)

    def at(i: int):
        return tokens[i] if 0 <= i < n else None

    left1, left2 = at(position - 1), at(position - 2)
    right1, right2 = at(position + 1), at(position + 2)
    keys: list[_ContextKey] = []
    if left1 is not None and right1 is not None:
        keys.append(("l1r1", left1, right1))
    if left1 is not None:
        for d in range(2, horizon + 1):
            future = at(position + d)
            if future is None:
                break
            keys.append(("dst", left1, future))
    if right1 is not None:
        for d in range(2, horizon + 1):
            past = at(position - d)
            if past is None:
                break
            keys.append(("rdst", right1, past))
    if left2 is not None and left1 is not None:
        keys.append(("l2", left2, left1))
    if right1 is not None and right2 is not None:
        keys.append(("r2", right1, right2))
    if left1 is not None:
        keys.append(("l1", left1))
    if right1 is not None:
        keys.append(("r1", right1))
    return keys


def _query_contexts(tokens: Sequence[int], position: int) -> list[_ContextKey]:
    """Context keys consulted when predicting ``tokens[position]``.

    The masked position's immediate neighbours are the current gap
    endpoints; the route tables are queried with that same pair (see
    :func:`_training_contexts`).
    """
    n = len(tokens)

    def at(i: int):
        return tokens[i] if 0 <= i < n else None

    left1, left2 = at(position - 1), at(position - 2)
    right1, right2 = at(position + 1), at(position + 2)
    keys: list[_ContextKey] = []
    if left1 is not None and right1 is not None:
        keys.append(("l1r1", left1, right1))
        keys.append(("dst", left1, right1))
        keys.append(("rdst", right1, left1))
    if left2 is not None and left1 is not None:
        keys.append(("l2", left2, left1))
    if right1 is not None and right2 is not None:
        keys.append(("r2", right1, right2))
    if left1 is not None:
        keys.append(("l1", left1))
    if right1 is not None:
        keys.append(("r1", right1))
    return keys


class CountingMaskedLM(MaskedModel):
    """Masked-token prediction from bidirectional context counts."""

    def __init__(
        self,
        smoothing: float = 0.1,
        horizon: int = DEFAULT_HORIZON,
        scoring: str = "policy_value",
    ) -> None:
        if smoothing <= 0:
            raise ValueError(f"smoothing must be positive, got {smoothing!r}")
        if horizon < 2:
            raise ValueError(f"horizon must be >= 2, got {horizon!r}")
        if scoring not in ("policy_value", "interpolation"):
            raise ValueError(
                f"scoring must be 'policy_value' or 'interpolation', got {scoring!r}"
            )
        self.smoothing = smoothing
        self.horizon = horizon
        self.scoring = scoring
        self._tables: dict[_ContextKey, Counter] = defaultdict(Counter)
        self._unigram: Counter = Counter()
        self._total_tokens = 0
        self._vocab_size = 0
        self._weights = dict(_TEMPLATE_WEIGHTS)

    # -- MaskedModel interface ---------------------------------------------

    def fit(self, sequences: Sequence[Sequence[int]], vocab_size: int) -> "CountingMaskedLM":
        if vocab_size <= 0:
            raise ValueError(f"vocab_size must be positive, got {vocab_size!r}")
        self._vocab_size = max(self._vocab_size, vocab_size)
        for seq in sequences:
            for i, token in enumerate(seq):
                self._unigram[token] += 1
                self._total_tokens += 1
                for key in _training_contexts(seq, i, self.horizon):
                    self._tables[key][token] += 1
        return self

    @property
    def is_fitted(self) -> bool:
        return self._total_tokens > 0

    @property
    def num_training_tokens(self) -> int:
        return self._total_tokens

    def _normalized(self, key: _ContextKey) -> dict[int, float]:
        table = self._tables.get(key)
        if not table:
            return {}
        total = sum(table.values())
        return {token: count / total for token, count in table.items()}

    def predict_masked(
        self, tokens: Sequence[int], position: int, top_k: int = 10
    ) -> list[TokenProb]:
        """Policy-times-value scoring (validated in tests/benchmarks).

        The *policy* term is the local transition evidence — which token
        follows the left gap endpoint ``u`` (and, when populated, which
        token was seen exactly between ``u`` and the right endpoint ``v``).
        The *value* term is the route evidence from the ``dst``/``rdst``
        tables — how often a candidate appeared on training trips running
        from ``u`` toward ``v``. Their product mirrors what BERT's
        attention computes: a locally plausible next token that also lies
        on an observed route to the destination. A small epsilon keeps
        locally plausible candidates alive when no route evidence exists.
        """
        validate_mask_query(tokens, position)
        if not self.is_fitted:
            raise NotFittedError("CountingMaskedLM.predict_masked before fit")
        if self.scoring == "interpolation":
            return self._predict_interpolated(tokens, position, top_k)

        n = len(tokens)
        left1 = tokens[position - 1] if position >= 1 else None
        right1 = tokens[position + 1] if position + 1 < n else None

        policy: dict[int, float] = defaultdict(float)
        if left1 is not None:
            for token, p in self._normalized(("l1", left1)).items():
                policy[token] += p
        if left1 is not None and right1 is not None:
            for token, p in self._normalized(("l1r1", left1, right1)).items():
                policy[token] += 4.0 * p
        if not policy and right1 is not None:
            # Left endpoint never seen: fall back to predecessors of v.
            for token, p in self._normalized(("r1", right1)).items():
                policy[token] += p

        scores: dict[int, float]
        if policy:
            value: dict[int, float] = defaultdict(float)
            if left1 is not None and right1 is not None:
                for token, p in self._normalized(("dst", left1, right1)).items():
                    value[token] += p
                for token, p in self._normalized(("rdst", right1, left1)).items():
                    value[token] += p
            eps = 0.05
            scores = {t: p * (eps + value.get(t, 0.0)) for t, p in policy.items()}
        else:
            # Nothing local at all: global unigram back-off.
            denom = self._total_tokens + self.smoothing * self._vocab_size
            scores = {
                token: (count + self.smoothing) / denom
                for token, count in self._unigram.items()
            }

        total = sum(scores.values())
        if total <= 0.0:
            return []
        ranked = sorted(scores.items(), key=lambda kv: (-kv[1], kv[0]))[:top_k]
        return [(token, score / total) for token, score in ranked]

    def _predict_interpolated(
        self, tokens: Sequence[int], position: int, top_k: int
    ) -> list[TokenProb]:
        """The additive Jelinek-Mercer mixture over all context tables.

        Kept as the ablation baseline for the default policy-times-value
        scoring (see ``benchmarks/bench_counting_scoring.py``): route
        evidence is *added* rather than multiplied, which dilutes the
        destination signal when local evidence is strong.
        """
        scores: dict[int, float] = defaultdict(float)
        total_weight = 0.0
        for key in _query_contexts(tokens, position):
            table = self._tables.get(key)
            if not table:
                continue
            weight = self._weights[key[0]]
            total_weight += weight
            denom = sum(table.values()) + self.smoothing * self._vocab_size
            for token, count in table.items():
                scores[token] += weight * (count + self.smoothing) / denom
        if total_weight == 0.0:
            denom = self._total_tokens + self.smoothing * self._vocab_size
            total_weight = 1.0
            scores = {
                token: (count + self.smoothing) / denom
                for token, count in self._unigram.items()
            }
        ranked = sorted(scores.items(), key=lambda kv: (-kv[1], kv[0]))[:top_k]
        return [(token, score / total_weight) for token, score in ranked]

    # -- persistence -------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-serializable dump (context keys flattened to strings)."""
        return {
            "smoothing": self.smoothing,
            "horizon": self.horizon,
            "scoring": self.scoring,
            "vocab_size": self._vocab_size,
            "total_tokens": self._total_tokens,
            "unigram": dict(self._unigram),
            "tables": {
                "|".join(str(part) for part in key): dict(counter)
                for key, counter in self._tables.items()
            },
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "CountingMaskedLM":
        model = cls(
            smoothing=payload["smoothing"],
            horizon=payload.get("horizon", DEFAULT_HORIZON),
            scoring=payload.get("scoring", "policy_value"),
        )
        model._vocab_size = payload["vocab_size"]
        model._total_tokens = payload["total_tokens"]
        model._unigram = Counter({int(k): v for k, v in payload["unigram"].items()})
        for flat_key, counts in payload["tables"].items():
            parts = flat_key.split("|")
            key: tuple = (parts[0], *(int(p) for p in parts[1:]))
            model._tables[key] = Counter({int(k): v for k, v in counts.items()})
        return model
