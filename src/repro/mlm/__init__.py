"""Masked language models over trajectory tokens.

KAMEL treats a tokenized trajectory as a sentence and asks a masked
language model "which token belongs here?". Two interchangeable backends
implement the :class:`MaskedModel` interface:

* :class:`BertMaskedLM` — a transformer-encoder masked LM built on the
  :mod:`repro.nn` autograd engine: token+position embeddings, multi-head
  self-attention, GELU feed-forward blocks, and an MLM head, trained with
  BERT's 15 % / 80-10-10 masking recipe. This is the faithful (scaled-down)
  reproduction of the paper's model.
* :class:`CountingMaskedLM` — a bidirectional context-counting model with
  back-off smoothing. It answers the same queries orders of magnitude
  faster and is the default backend for full-sweep benchmarks.
"""

from repro.mlm.vocab import Vocabulary
from repro.mlm.base import MaskedModel, TokenProb
from repro.mlm.counting import CountingMaskedLM
from repro.mlm.bert import BertConfig, BertMaskedLM, BertModel, TrainingConfig
from repro.mlm.evaluation import MaskedEvalResult, evaluate_masked_model

__all__ = [
    "BertConfig",
    "BertMaskedLM",
    "BertModel",
    "CountingMaskedLM",
    "MaskedEvalResult",
    "MaskedModel",
    "evaluate_masked_model",
    "TokenProb",
    "TrainingConfig",
    "Vocabulary",
]
