"""Token vocabulary: interning grid cells as contiguous integer ids."""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator, Sequence

from repro.errors import VocabularyError

PAD_TOKEN = "[PAD]"
MASK_TOKEN = "[MASK]"
UNK_TOKEN = "[UNK]"
SPECIAL_TOKENS = (PAD_TOKEN, MASK_TOKEN, UNK_TOKEN)


class Vocabulary:
    """A bidirectional mapping between grid cells and integer token ids.

    Ids 0..2 are reserved for ``[PAD]``, ``[MASK]`` and ``[UNK]``; grid
    cells get ids from 3 upward in insertion order, so a vocabulary grown
    from the same data in the same order is always identical.
    """

    def __init__(self) -> None:
        self._item_to_id: dict[Hashable, int] = {}
        self._id_to_item: list[Hashable] = []
        for special in SPECIAL_TOKENS:
            self._intern(special)

    def _intern(self, item: Hashable) -> int:
        existing = self._item_to_id.get(item)
        if existing is not None:
            return existing
        token_id = len(self._id_to_item)
        self._item_to_id[item] = token_id
        self._id_to_item.append(item)
        return token_id

    # -- special ids -------------------------------------------------------

    @property
    def pad_id(self) -> int:
        return 0

    @property
    def mask_id(self) -> int:
        return 1

    @property
    def unk_id(self) -> int:
        return 2

    @property
    def num_special(self) -> int:
        return len(SPECIAL_TOKENS)

    def is_special(self, token_id: int) -> bool:
        return 0 <= token_id < self.num_special

    # -- encode / decode ----------------------------------------------------

    def add(self, item: Hashable) -> int:
        """Intern ``item``, returning its (possibly new) id."""
        if item in SPECIAL_TOKENS:
            raise VocabularyError(f"cannot add reserved token {item!r}")
        return self._intern(item)

    def encode(self, item: Hashable) -> int:
        """Id of ``item``; :attr:`unk_id` if unknown."""
        return self._item_to_id.get(item, self.unk_id)

    def encode_many(self, items: Iterable[Hashable], grow: bool = False) -> list[int]:
        """Encode a sequence; ``grow=True`` interns unseen items."""
        if grow:
            return [self.add(item) for item in items]
        return [self.encode(item) for item in items]

    def decode(self, token_id: int) -> Hashable:
        """The item for ``token_id``; raises for out-of-range ids."""
        if not 0 <= token_id < len(self._id_to_item):
            raise VocabularyError(f"token id {token_id} out of range (size {len(self)})")
        return self._id_to_item[token_id]

    def __contains__(self, item: Hashable) -> bool:
        return item in self._item_to_id

    def __len__(self) -> int:
        return len(self._id_to_item)

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._id_to_item)

    def real_token_ids(self) -> range:
        """Ids of all non-special tokens."""
        return range(self.num_special, len(self))

    # -- persistence ----------------------------------------------------------

    def to_list(self) -> list:
        """JSON-friendly dump of the non-special items, in id order."""
        return [list(item) if isinstance(item, tuple) else item
                for item in self._id_to_item[self.num_special:]]

    @classmethod
    def from_list(cls, items: Sequence, tuple_items: bool = True) -> "Vocabulary":
        """Rebuild from :meth:`to_list` output."""
        vocab = cls()
        for item in items:
            vocab.add(tuple(item) if tuple_items and isinstance(item, list) else item)
        return vocab

    def __repr__(self) -> str:
        return f"Vocabulary(size={len(self)})"


def build_vocabulary(sequences: Iterable[Sequence[Hashable]]) -> tuple[Vocabulary, list[list[int]]]:
    """Intern every item of ``sequences``; returns (vocab, encoded sequences)."""
    vocab = Vocabulary()
    encoded = [vocab.encode_many(seq, grow=True) for seq in sequences]
    return vocab, encoded
