"""The masked-model interface shared by the BERT and counting backends."""

from __future__ import annotations

import abc
from typing import Sequence

TokenProb = tuple[int, float]
"""A candidate token id with its predicted probability."""


class MaskedModel(abc.ABC):
    """Predicts the token at a masked position of a token sequence.

    This is the "BERT black box" of the paper's architecture diagram: the
    partitioning module trains one instance per spatial area, and the
    multipoint-imputation module queries it with partially imputed
    segments. Sequences are plain token-id lists *without* special tokens;
    the position being predicted is identified by index (implementations
    substitute their own mask sentinel internally).
    """

    @abc.abstractmethod
    def fit(self, sequences: Sequence[Sequence[int]], vocab_size: int) -> "MaskedModel":
        """Train on tokenized trajectories. Returns self."""

    @abc.abstractmethod
    def predict_masked(
        self, tokens: Sequence[int], position: int, top_k: int = 10
    ) -> list[TokenProb]:
        """Candidate tokens for ``tokens[position]``.

        ``tokens[position]`` is ignored (treated as masked); the rest are
        context. Results are sorted by probability, highest first, and the
        probabilities are a proper distribution over the vocabulary (so
        they can be multiplied along a beam-search path).
        """

    @property
    @abc.abstractmethod
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has been called with non-empty data."""

    @property
    @abc.abstractmethod
    def num_training_tokens(self) -> int:
        """Total number of tokens seen during training (model metadata)."""


def validate_mask_query(tokens: Sequence[int], position: int) -> None:
    """Shared argument validation for :meth:`MaskedModel.predict_masked`."""
    if not tokens:
        raise ValueError("cannot predict on an empty token sequence")
    if not 0 <= position < len(tokens):
        raise ValueError(
            f"mask position {position} out of range for sequence of length {len(tokens)}"
        )
