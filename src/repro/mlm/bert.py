"""A scaled-down BERT masked language model on the numpy autograd engine.

Architecture follows Devlin et al. (2018): token + learned position
embeddings, post-LN transformer encoder blocks (multi-head self-attention
and a GELU feed-forward), and an MLM head (dense + GELU + LayerNorm +
output projection). Training uses BERT's recipe: mask 15 % of positions,
of which 80 % become ``[MASK]``, 10 % a random token, 10 % are kept.

The paper trains a 768/12/12 BERT on a TPU; this reproduction defaults to
a 2-layer, 48-dimensional model that trains in seconds on CPU while
exercising the identical code path (mask -> contextual distribution over
the hexagon-token vocabulary).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.errors import ConfigError, NotFittedError
from repro.mlm.base import MaskedModel, TokenProb, validate_mask_query
from repro.nn import Adam, Dropout, Embedding, LayerNorm, Linear, Module, clip_grad_norm, no_grad
from repro.nn.functional import cross_entropy
from repro.nn.tensor import Tensor
from repro.obs import instrument as obs
from repro.obs.logging import get_logger
from repro.obs.tracing import span

_log = get_logger("mlm.bert")

_NUM_SPECIAL = 3  # [PAD], [MASK], [UNK] — must match repro.mlm.vocab
_PAD_ID, _MASK_ID, _UNK_ID = 0, 1, 2
_ATTN_NEG = -1e9


@dataclass(frozen=True)
class BertConfig:
    """Transformer hyperparameters."""

    vocab_size: int
    hidden_size: int = 48
    num_layers: int = 2
    num_heads: int = 2
    ffn_size: int = 0
    """Defaults to 4 x hidden_size when 0."""
    max_seq_len: int = 64
    dropout: float = 0.1
    share_layers: bool = False
    """ALBERT-style cross-layer parameter sharing: one transformer block
    applied ``num_layers`` times. The paper notes "other BERT variants ...
    can also be used with different adaptations"; this is the cheapest
    such variant (Lan et al., ICLR 2020) and cuts parameters roughly by
    the layer count."""
    seed: int = 0

    def __post_init__(self) -> None:
        if self.vocab_size <= _NUM_SPECIAL:
            raise ConfigError(f"vocab_size must exceed {_NUM_SPECIAL}, got {self.vocab_size}")
        if self.hidden_size % max(1, self.num_heads) != 0:
            raise ConfigError("hidden_size must be divisible by num_heads")
        if self.num_layers < 1 or self.num_heads < 1:
            raise ConfigError("num_layers and num_heads must be >= 1")
        if self.ffn_size == 0:
            object.__setattr__(self, "ffn_size", 4 * self.hidden_size)


@dataclass(frozen=True)
class TrainingConfig:
    """Masked-LM training hyperparameters."""

    epochs: int = 25
    batch_size: int = 16
    lr: float = 3e-3
    warmup_steps: int = 20
    mask_prob: float = 0.15
    grad_clip: float = 1.0
    seed: int = 0
    max_steps: Optional[int] = None
    log_every: int = 0
    """Log loss (at INFO, logger ``repro.mlm.bert``) every N steps when
    > 0; training progress is otherwise logged at DEBUG."""


class MultiHeadSelfAttention(Module):
    """Scaled dot-product attention with ``num_heads`` heads."""

    def __init__(self, config: BertConfig, rng: np.random.Generator) -> None:
        super().__init__()
        d = config.hidden_size
        self.num_heads = config.num_heads
        self.head_dim = d // config.num_heads
        self.query = Linear(d, d, rng)
        self.key = Linear(d, d, rng)
        self.value = Linear(d, d, rng)
        self.output = Linear(d, d, rng)
        self.dropout = Dropout(config.dropout, rng=np.random.default_rng(config.seed + 101))

    def _split_heads(self, x: Tensor, batch: int, seq: int) -> Tensor:
        # (B, T, D) -> (B, H, T, dh)
        return x.reshape(batch, seq, self.num_heads, self.head_dim).transpose(1, 2)

    def forward(self, x: Tensor, attn_bias: np.ndarray) -> Tensor:
        batch, seq, _ = x.shape
        q = self._split_heads(self.query(x), batch, seq)
        k = self._split_heads(self.key(x), batch, seq)
        v = self._split_heads(self.value(x), batch, seq)
        scores = (q @ k.transpose(2, 3)) * (1.0 / math.sqrt(self.head_dim))
        scores = scores + Tensor(attn_bias)  # (B, 1, 1, T) broadcast
        weights = self.dropout(scores.softmax(axis=-1))
        context = weights @ v  # (B, H, T, dh)
        merged = context.transpose(1, 2).reshape(batch, seq, self.num_heads * self.head_dim)
        return self.output(merged)


class TransformerLayer(Module):
    """Post-LN encoder block: attention + FFN, each with residual."""

    def __init__(self, config: BertConfig, rng: np.random.Generator) -> None:
        super().__init__()
        d = config.hidden_size
        self.attention = MultiHeadSelfAttention(config, rng)
        self.attn_norm = LayerNorm(d)
        self.ffn_in = Linear(d, config.ffn_size, rng)
        self.ffn_out = Linear(config.ffn_size, d, rng)
        self.ffn_norm = LayerNorm(d)
        self.dropout = Dropout(config.dropout, rng=np.random.default_rng(config.seed + 202))

    def forward(self, x: Tensor, attn_bias: np.ndarray) -> Tensor:
        x = self.attn_norm(x + self.dropout(self.attention(x, attn_bias)))
        hidden = self.ffn_out(self.ffn_in(x).gelu())
        return self.ffn_norm(x + self.dropout(hidden))


class BertModel(Module):
    """Encoder + MLM head producing per-position vocabulary logits."""

    def __init__(self, config: BertConfig) -> None:
        super().__init__()
        rng = np.random.default_rng(config.seed)
        self.config = config
        d = config.hidden_size
        self.token_embedding = Embedding(config.vocab_size, d, rng)
        self.position_embedding = Embedding(config.max_seq_len, d, rng)
        self.embed_norm = LayerNorm(d)
        self.embed_dropout = Dropout(config.dropout, rng=np.random.default_rng(config.seed + 303))
        if config.share_layers:
            shared = TransformerLayer(config, rng)
            self.layers = [shared] * config.num_layers
        else:
            self.layers = [TransformerLayer(config, rng) for _ in range(config.num_layers)]
        self.mlm_dense = Linear(d, d, rng)
        self.mlm_norm = LayerNorm(d)
        self.mlm_decoder = Linear(d, config.vocab_size, rng)

    def forward(self, ids: np.ndarray, attention_mask: Optional[np.ndarray] = None) -> Tensor:
        """``ids``: (B, T) int array. Returns logits of shape (B, T, V)."""
        ids = np.asarray(ids, dtype=np.int64)
        batch, seq = ids.shape
        if seq > self.config.max_seq_len:
            raise ConfigError(
                f"sequence length {seq} exceeds max_seq_len {self.config.max_seq_len}"
            )
        with obs.stopwatch("repro.bert.forward_seconds"):
            if attention_mask is None:
                attention_mask = (ids != _PAD_ID).astype(np.float64)
            attn_bias = (1.0 - attention_mask)[:, None, None, :] * _ATTN_NEG

            positions = np.broadcast_to(np.arange(seq), (batch, seq))
            x = self.token_embedding(ids) + self.position_embedding(positions)
            x = self.embed_dropout(self.embed_norm(x))
            for layer in self.layers:
                x = layer(x, attn_bias)
            x = self.mlm_norm(self.mlm_dense(x).gelu())
            logits = self.mlm_decoder(x)
        obs.observe("repro.bert.forward_batch_size", batch)
        return logits


def _mask_batch(
    batch: np.ndarray,
    mask_prob: float,
    vocab_size: int,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray]:
    """Apply BERT's 80/10/10 masking. Returns (inputs, targets)."""
    inputs = batch.copy()
    targets = np.full_like(batch, -100)
    maskable = batch >= _NUM_SPECIAL
    lottery = rng.random(batch.shape)
    chosen = maskable & (lottery < mask_prob)
    # Guarantee at least one masked position per sequence with any
    # maskable token, otherwise short sequences never contribute loss.
    for row in range(batch.shape[0]):
        if maskable[row].any() and not chosen[row].any():
            candidates = np.nonzero(maskable[row])[0]
            chosen[row, rng.choice(candidates)] = True
    targets[chosen] = batch[chosen]
    action = rng.random(batch.shape)
    to_mask = chosen & (action < 0.8)
    to_random = chosen & (action >= 0.8) & (action < 0.9)
    inputs[to_mask] = _MASK_ID
    n_random = int(to_random.sum())
    if n_random:
        inputs[to_random] = rng.integers(_NUM_SPECIAL, vocab_size, size=n_random)
    return inputs, targets


class BertMaskedLM(MaskedModel):
    """The :class:`MaskedModel` backend wrapping :class:`BertModel`."""

    def __init__(
        self,
        config: Optional[BertConfig] = None,
        training: Optional[TrainingConfig] = None,
        vocab_size: Optional[int] = None,
    ) -> None:
        if config is None and vocab_size is None:
            # Deferred: built at fit() time when the vocab size is known.
            self._config: Optional[BertConfig] = None
        else:
            self._config = config or BertConfig(vocab_size=int(vocab_size))  # type: ignore[arg-type]
        self.training_config = training or TrainingConfig()
        self.model: Optional[BertModel] = None
        self._num_training_tokens = 0
        self.loss_history: list[float] = []

    # -- data preparation ----------------------------------------------------

    def _chunk(self, sequences: Sequence[Sequence[int]], max_len: int) -> list[list[int]]:
        chunks: list[list[int]] = []
        for seq in sequences:
            seq = list(seq)
            if len(seq) < 2:
                continue
            for start in range(0, len(seq), max_len - 1):
                piece = seq[start : start + max_len]
                if len(piece) >= 2:
                    chunks.append(piece)
        return chunks

    def _batches(
        self, chunks: list[list[int]], rng: np.random.Generator
    ) -> list[np.ndarray]:
        order = rng.permutation(len(chunks))
        size = self.training_config.batch_size
        batches = []
        for start in range(0, len(chunks), size):
            group = [chunks[i] for i in order[start : start + size]]
            width = max(len(c) for c in group)
            arr = np.full((len(group), width), _PAD_ID, dtype=np.int64)
            for row, c in enumerate(group):
                arr[row, : len(c)] = c
            batches.append(arr)
        return batches

    # -- MaskedModel interface -------------------------------------------------

    def fit(self, sequences: Sequence[Sequence[int]], vocab_size: int) -> "BertMaskedLM":
        if self._config is None:
            self._config = BertConfig(vocab_size=vocab_size)
        elif vocab_size > self._config.vocab_size:
            raise ConfigError(
                f"vocab_size {vocab_size} exceeds model capacity {self._config.vocab_size}"
            )
        cfg = self._config
        tcfg = self.training_config
        rng = np.random.default_rng(tcfg.seed)
        self.model = BertModel(cfg)
        self.model.train()

        chunks = self._chunk(sequences, cfg.max_seq_len)
        self._num_training_tokens = sum(len(c) for c in chunks)
        if not chunks:
            return self

        with span("bert.fit", chunks=len(chunks), vocab=cfg.vocab_size):
            with obs.stopwatch("repro.bert.fit_seconds"):
                self._train_loop(chunks, cfg, tcfg, rng)
        self.model.eval()
        return self

    def _train_loop(self, chunks, cfg: BertConfig, tcfg: TrainingConfig, rng) -> None:
        params = list(self.model.parameters())
        optimizer = Adam(params, lr=tcfg.lr, warmup_steps=tcfg.warmup_steps)
        steps = obs.counter("repro.bert.train_steps_total")
        step = 0
        for _ in range(tcfg.epochs):
            for batch in self._batches(chunks, rng):
                inputs, targets = _mask_batch(batch, tcfg.mask_prob, cfg.vocab_size, rng)
                if (targets != -100).sum() == 0:
                    continue
                logits = self.model(inputs)
                loss = cross_entropy(logits, targets)
                optimizer.zero_grad()
                loss.backward()
                clip_grad_norm(params, tcfg.grad_clip)
                optimizer.step()
                self.loss_history.append(loss.item())
                steps.inc()
                if tcfg.log_every and step % tcfg.log_every == 0:
                    _log.info(
                        "bert training step",
                        extra={"data": {"step": step, "loss": round(loss.item(), 4)}},
                    )
                step += 1
                if tcfg.max_steps is not None and step >= tcfg.max_steps:
                    return

    @property
    def is_fitted(self) -> bool:
        return self.model is not None and self._num_training_tokens > 0

    @property
    def num_training_tokens(self) -> int:
        return self._num_training_tokens

    def predict_masked(
        self, tokens: Sequence[int], position: int, top_k: int = 10
    ) -> list[TokenProb]:
        validate_mask_query(tokens, position)
        if not self.is_fitted:
            raise NotFittedError("BertMaskedLM.predict_masked before fit")
        assert self.model is not None and self._config is not None
        obs.count("repro.bert.predictions_total")

        # Clip a context window around the masked position when the
        # sequence exceeds the model's maximum length.
        max_len = self._config.max_seq_len
        tokens = list(tokens)
        start = 0
        if len(tokens) > max_len:
            start = min(max(0, position - max_len // 2), len(tokens) - max_len)
            tokens = tokens[start : start + max_len]
        local = position - start
        tokens[local] = _MASK_ID

        ids = np.asarray([tokens], dtype=np.int64)
        with no_grad():
            logits = self.model(ids)
        row = logits.data[0, local]
        row = row - row.max()
        probs = np.exp(row)
        probs /= probs.sum()
        probs[:_NUM_SPECIAL] = 0.0  # never propose special tokens
        order = np.argsort(-probs)[:top_k]
        return [(int(i), float(probs[i])) for i in order if probs[i] > 0.0]
