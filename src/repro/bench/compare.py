"""Noise-tolerant snapshot comparison: improved / unchanged / regressed.

The comparator turns two snapshots — v2 bench documents, legacy v1
documents, or raw ``--metrics-out`` registry snapshots — into a list of
:class:`Delta` rows, one per metric, each classified against thresholds
that know two things a naive diff does not:

* **metric direction** — ``repro.kamel.impute_seconds`` going *down* is
  an improvement, ``repro.eval`` recall going down is a regression, and
  a changed segment count is neither (``changed``: surfaced, but never
  failing a gate); metrics present on only one side render as ``added``
  / ``removed`` rather than pretending to have moved;
* **noise** — a delta only counts when it clears the larger of a
  relative tolerance (generous for wall-time metrics, tight for exact
  counters) and ``noise_sigmas`` times the run-to-run stdev recorded in
  the snapshot, so a zero-stdev counter drift of one call is flagged
  while a 20 % wobble on a 2-repeat timing is not.

``kamel bench --compare`` and the CI perf gate exit non-zero iff any
row classifies as ``regressed``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Optional

from repro.bench.snapshot import SCHEMA_V1, SCHEMA_V2, flatten_summary, migrate, scalar_summary

__all__ = [
    "CompareConfig",
    "Delta",
    "compare_snapshots",
    "has_regressions",
    "metric_direction",
    "render_deltas",
    "stats_modules",
]


_HISTOGRAM_LEAVES = {"count", "mean", "p50", "p90", "p99", "sum", "min", "max", "stdev"}

_LOWER_IS_BETTER = (
    "_seconds",
    "failure",
    "failures",
    "fallback.",
    "rejected.",
    "model_calls",
    "calls_per_segment",
    "budget_exhausted",
    "deadline_exceeded",
    "rung_errors",
    "breaker",
    "quarantined",
    "lookup_miss",
    "retries",
    "latency",
    "unseen_cell_mass",
    "_psi",
    "cell_js",
    ".ece",
    "calibration_gap",
    "snap_distance",
)

_HIGHER_IS_BETTER = (
    "recall",
    "precision",
    "accuracy",
    "lookup_hit",
    "top1",
    "top10",
    "topk",
)


def _split_leaf(name: str) -> tuple[str, Optional[str]]:
    base, _, leaf = name.rpartition(".")
    if base and leaf in _HISTOGRAM_LEAVES:
        return base, leaf
    return name, None


def metric_direction(name: str) -> str:
    """``lower`` / ``higher`` / ``neutral`` — which way is good for
    ``name`` (dotted histogram leaves inherit their base metric, except
    ``.count``, which is an event count, not a latency)."""
    base, leaf = _split_leaf(name)
    if leaf == "count":
        return "neutral"
    if any(token in base for token in _LOWER_IS_BETTER):
        return "lower"
    if any(token in base for token in _HIGHER_IS_BETTER):
        return "higher"
    return "neutral"


def _is_timing(name: str) -> bool:
    base, leaf = _split_leaf(name)
    return "_seconds" in base and leaf != "count"


@dataclass(frozen=True)
class CompareConfig:
    """Thresholds for calling a delta significant.

    ``timing_rel_tol`` applies to wall-time metrics (inherently noisy;
    CI gates comparing across machines should pass something much larger
    via ``--timing-tol``), ``count_rel_tol`` to everything else. The
    stdev term uses the larger stdev of the two snapshots.
    """

    timing_rel_tol: float = 0.35
    count_rel_tol: float = 0.05
    noise_sigmas: float = 3.0
    abs_tol: float = 1e-9

    def tolerance(self, name: str, base: float, stdev: float) -> float:
        rel = self.timing_rel_tol if _is_timing(name) else self.count_rel_tol
        return max(rel * abs(base), self.noise_sigmas * stdev, self.abs_tol)


@dataclass(frozen=True)
class Delta:
    """One metric's movement between baseline and current."""

    module: str
    metric: str
    baseline: Optional[float]
    baseline_stdev: float
    current: Optional[float]
    current_stdev: float
    classification: str  # improved|unchanged|regressed|changed|added|removed
    direction: str

    @property
    def change_pct(self) -> Optional[float]:
        if self.baseline in (None, 0.0) or self.current is None:
            return None
        return (self.current - self.baseline) / abs(self.baseline) * 100.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "module": self.module,
            "metric": self.metric,
            "baseline": self.baseline,
            "baseline_stdev": self.baseline_stdev,
            "current": self.current,
            "current_stdev": self.current_stdev,
            "change_pct": self.change_pct,
            "classification": self.classification,
            "direction": self.direction,
        }


def stats_modules(doc: Mapping[str, Any]) -> dict[str, dict[str, tuple[float, float]]]:
    """Normalize any supported document into ``{module: {metric: (mean, stdev)}}``.

    Accepts v2 bench snapshots, v1 (auto-migrated), and raw registry
    snapshots from ``--metrics-out`` (which have no modules — they map to
    the single module ``""``).
    """
    schema = doc.get("schema")
    if schema == SCHEMA_V1:
        doc = migrate(doc)
        schema = doc["schema"]
    if schema == SCHEMA_V2:
        return {
            module: {
                name: (float(stat["mean"]), float(stat.get("stdev", 0.0)))
                for name, stat in stats.items()
            }
            for module, stats in doc.get("modules", {}).items()
        }
    # A raw registry snapshot: {metric: {"type": ..., ...}}.
    if any(isinstance(v, Mapping) and "type" in v for v in doc.values()):
        flat = flatten_summary(scalar_summary(doc))
        return {"": {name: (value, 0.0) for name, value in flat.items()}}
    raise ValueError(f"unrecognized snapshot document (schema {schema!r})")


def _classify(
    name: str, base: float, bstd: float, cur: float, cstd: float, cfg: CompareConfig
) -> str:
    tol = cfg.tolerance(name, base, max(bstd, cstd))
    if abs(cur - base) <= tol:
        return "unchanged"
    direction = metric_direction(name)
    if direction == "neutral":
        return "changed"
    worse = cur > base if direction == "lower" else cur < base
    return "regressed" if worse else "improved"


def compare_snapshots(
    baseline: Mapping[str, Any],
    current: Mapping[str, Any],
    config: Optional[CompareConfig] = None,
) -> list[Delta]:
    """Classify every metric of both snapshots (union, per module)."""
    cfg = config or CompareConfig()
    base_modules = stats_modules(baseline)
    cur_modules = stats_modules(current)
    deltas: list[Delta] = []
    for module in sorted(set(base_modules) | set(cur_modules)):
        base_stats = base_modules.get(module, {})
        cur_stats = cur_modules.get(module, {})
        for name in sorted(set(base_stats) | set(cur_stats)):
            in_base, in_cur = name in base_stats, name in cur_stats
            bmean, bstd = base_stats.get(name, (None, 0.0))
            cmean, cstd = cur_stats.get(name, (None, 0.0))
            if not in_base:
                classification = "added"
            elif not in_cur:
                classification = "removed"
            else:
                classification = _classify(name, bmean, bstd, cmean, cstd, cfg)
            deltas.append(
                Delta(
                    module=module,
                    metric=name,
                    baseline=bmean,
                    baseline_stdev=bstd,
                    current=cmean,
                    current_stdev=cstd,
                    classification=classification,
                    direction=metric_direction(name),
                )
            )
    return deltas


def has_regressions(deltas: Iterable[Delta]) -> bool:
    return any(d.classification == "regressed" for d in deltas)


_SEVERITY = {
    "regressed": 0, "removed": 1, "changed": 2, "improved": 3, "added": 4, "unchanged": 5,
}


def render_deltas(deltas: Iterable[Delta], include_unchanged: bool = False) -> str:
    """The side-by-side delta table (``kamel stats A B`` / ``kamel bench
    --compare``), most severe classifications first."""
    from repro.eval.report import render_table

    def fmt(value: Optional[float], stdev: float) -> str:
        if value is None:
            return "-"
        text = f"{value:.6g}"
        if stdev:
            text += f"±{stdev:.2g}"
        return text

    rows = []
    shown = sorted(
        deltas,
        key=lambda d: (_SEVERITY[d.classification], d.module, d.metric),
    )
    hidden = 0
    for d in shown:
        if d.classification == "unchanged" and not include_unchanged:
            hidden += 1
            continue
        pct = f"{d.change_pct:+.1f}%" if d.change_pct is not None else "-"
        metric = f"{d.module}:{d.metric}" if d.module else d.metric
        rows.append(
            [metric, fmt(d.baseline, d.baseline_stdev), fmt(d.current, d.current_stdev),
             pct, d.classification]
        )
    if not rows:
        table = "(no metric moved)"
    else:
        table = render_table(
            ["metric", "baseline", "current", "delta", "class"], rows
        )
    if hidden:
        table += f"\n({hidden} unchanged metrics hidden)"
    return table
