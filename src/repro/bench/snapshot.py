"""Benchmark snapshot documents: schema v2, fingerprints, migration.

A *bench snapshot* is the committed perf record of one benchmark run
(``BENCH_observability.json`` at the repo root). Schema v2 makes it
comparable across machines and PRs:

* an **environment fingerprint** — python/platform/numpy versions, git
  commit, and the suite seed — so a diff between two snapshots can be
  read knowing *where* each side ran;
* every metric stored as ``{"mean": …, "stdev": …}`` across the run's
  repeats, so the comparator can tell noise from signal;
* histogram summaries flattened to dotted leaves
  (``repro.kamel.impute_seconds.p50``) instead of nested dicts.

Schema v1 documents (plain scalars, nested histogram dicts, no
environment) still load: :func:`migrate` lifts them to v2 with zero
stdev and an explicitly unknown environment.
"""

from __future__ import annotations

import json
import pathlib
import platform
import statistics
import subprocess
from typing import Any, Mapping, Optional, Sequence, Union

__all__ = [
    "SCHEMA_V1",
    "SCHEMA_V2",
    "environment_fingerprint",
    "flatten_summary",
    "load_snapshot",
    "make_snapshot",
    "migrate",
    "scalar_summary",
    "write_snapshot",
]

SCHEMA_V1 = "bench-observability/1"
SCHEMA_V2 = "bench-observability/2"

#: Histogram leaves kept in bench summaries, in render order.
HISTOGRAM_LEAVES = ("count", "mean", "p50", "p99")


def _git_commit(cwd: Optional[pathlib.Path] = None) -> Optional[str]:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    commit = out.stdout.strip()
    return commit if out.returncode == 0 and commit else None


def environment_fingerprint(
    seed: Optional[int] = None, repo_root: Optional[pathlib.Path] = None
) -> dict[str, Any]:
    """Where and how this run happened (stamped into every v2 snapshot)."""
    try:
        import numpy

        numpy_version: Optional[str] = numpy.__version__
    except Exception:  # pragma: no cover - numpy is a hard dependency
        numpy_version = None
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "numpy": numpy_version,
        "commit": _git_commit(repo_root),
        "seed": seed,
    }


def scalar_summary(snapshot: Mapping[str, Mapping[str, Any]]) -> dict[str, Any]:
    """Compress one registry snapshot to diff-friendly scalars.

    Counters and gauges keep their value; histograms that observed
    anything become ``{count, mean, p50, p99}`` dicts (the v1 layout —
    :func:`flatten_summary` turns those into dotted leaves).
    """
    out: dict[str, Any] = {}
    for name, data in sorted(snapshot.items()):
        if data.get("type") in ("counter", "gauge"):
            out[name] = data["value"]
        elif data.get("type") == "histogram" and data.get("count"):
            quantiles = data.get("quantiles") or {}
            out[name] = {
                "count": data["count"],
                "mean": data["mean"],
                "p50": quantiles.get("p50"),
                "p99": quantiles.get("p99"),
            }
    return out


def flatten_summary(summary: Mapping[str, Any]) -> dict[str, float]:
    """Dotted flat floats from a scalar summary (drops None leaves)."""
    flat: dict[str, float] = {}
    for name, value in summary.items():
        if isinstance(value, Mapping):
            for leaf in HISTOGRAM_LEAVES:
                leaf_value = value.get(leaf)
                if leaf_value is not None:
                    flat[f"{name}.{leaf}"] = float(leaf_value)
        elif value is not None:
            flat[name] = float(value)
    return flat


def make_snapshot(
    module_runs: Mapping[str, Sequence[Mapping[str, float]]],
    seed: Optional[int] = None,
    repo_root: Optional[pathlib.Path] = None,
    environment: Optional[dict[str, Any]] = None,
) -> dict[str, Any]:
    """Aggregate per-repeat flat summaries into a v2 snapshot document.

    ``module_runs`` maps module name to one flat ``{metric: value}`` dict
    per repeat. A metric missing from some repeats is aggregated over the
    repeats that did record it; stdev is the sample standard deviation
    (0.0 for a single repeat).
    """
    repeats = max((len(runs) for runs in module_runs.values()), default=0)
    modules: dict[str, dict[str, dict[str, float]]] = {}
    for module, runs in sorted(module_runs.items()):
        names = sorted({name for run in runs for name in run})
        stats: dict[str, dict[str, float]] = {}
        for name in names:
            values = [run[name] for run in runs if name in run]
            stats[name] = {
                "mean": statistics.fmean(values),
                "stdev": statistics.stdev(values) if len(values) > 1 else 0.0,
            }
        modules[module] = stats
    return {
        "schema": SCHEMA_V2,
        "environment": (
            environment
            if environment is not None
            else environment_fingerprint(seed=seed, repo_root=repo_root)
        ),
        "repeats": repeats,
        "modules": modules,
    }


def migrate(doc: Mapping[str, Any]) -> dict[str, Any]:
    """Lift a v1 snapshot to v2 in place-compatible form.

    Values become ``{"mean": value, "stdev": 0.0}``, nested histogram
    dicts are flattened, and the environment is marked unknown (v1 never
    recorded one). A v2 document passes through unchanged.
    """
    schema = doc.get("schema")
    if schema == SCHEMA_V2:
        return dict(doc)
    if schema != SCHEMA_V1:
        raise ValueError(f"not a bench snapshot (schema {schema!r})")
    modules = {
        module: {
            name: {"mean": value, "stdev": 0.0}
            for name, value in sorted(flatten_summary(summary).items())
        }
        for module, summary in sorted(doc.get("modules", {}).items())
    }
    return {
        "schema": SCHEMA_V2,
        "environment": {"migrated_from": SCHEMA_V1},
        "repeats": 1,
        "modules": modules,
    }


def load_snapshot(path: Union[str, pathlib.Path]) -> dict[str, Any]:
    """Read a snapshot file, migrating v1 documents to v2 on the fly."""
    with open(path) as handle:
        doc = json.load(handle)
    if not isinstance(doc, dict):
        raise ValueError(f"{path}: not a snapshot document")
    return migrate(doc) if doc.get("schema") == SCHEMA_V1 else doc


def write_snapshot(path: Union[str, pathlib.Path], doc: Mapping[str, Any]) -> None:
    with open(path, "w") as handle:
        json.dump(doc, handle, indent=2, default=float, sort_keys=False)
        handle.write("\n")
