"""Continuous benchmarking: snapshots, comparison, and the bench runner.

Three modules turn the ``benchmarks/`` figure suite into a perf gate:

* :mod:`repro.bench.snapshot` — the ``bench-observability/2`` snapshot
  document (environment fingerprint, per-metric mean/stdev across
  repeats) plus migration from the v1 layout;
* :mod:`repro.bench.compare` — the noise-tolerant comparator that
  classifies every metric of two snapshots as improved / unchanged /
  regressed (direction-aware, stdev-aware) and renders the delta table;
* :mod:`repro.bench.runner` — the N-repeat suite runner behind
  ``kamel bench`` (each repeat an isolated pytest subprocess over the
  real benchmark modules).

The committed baseline lives at the repo root as
``BENCH_observability.json``; ``kamel bench --compare`` gates against
it and ``kamel bench --update-baseline`` refreshes it. See
``docs/observability.md`` ("Profiling & regression tracking").
"""

from repro.bench.compare import (
    CompareConfig,
    Delta,
    compare_snapshots,
    has_regressions,
    metric_direction,
    render_deltas,
    stats_modules,
)
from repro.bench.runner import SUITES, BenchRunner, Suite
from repro.bench.snapshot import (
    SCHEMA_V1,
    SCHEMA_V2,
    environment_fingerprint,
    flatten_summary,
    load_snapshot,
    make_snapshot,
    migrate,
    scalar_summary,
    write_snapshot,
)

__all__ = [
    "BenchRunner",
    "CompareConfig",
    "Delta",
    "SCHEMA_V1",
    "SCHEMA_V2",
    "SUITES",
    "Suite",
    "compare_snapshots",
    "environment_fingerprint",
    "flatten_summary",
    "has_regressions",
    "load_snapshot",
    "make_snapshot",
    "metric_direction",
    "migrate",
    "render_deltas",
    "scalar_summary",
    "stats_modules",
    "write_snapshot",
]
