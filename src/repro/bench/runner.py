"""The continuous-benchmark runner behind ``kamel bench``.

A *suite* is a named subset of the ``benchmarks/`` figure-regeneration
modules. The runner executes the suite ``repeats`` times — each repeat a
fresh ``pytest`` subprocess with ``--metrics-out`` pointed at a temp
directory, so every repeat gets a clean metrics registry and the *exact*
code path the committed baseline was recorded from — then aggregates the
per-module scalar summaries into a schema-v2 snapshot
(:func:`repro.bench.snapshot.make_snapshot`): environment fingerprint,
and mean/stdev across repeats for every metric.

Tests inject a ``collect`` callable instead of the subprocess, so the
aggregation and comparison logic is exercised without minute-long bench
runs.
"""

from __future__ import annotations

import json
import pathlib
import subprocess
import sys
import tempfile
from dataclasses import dataclass
from typing import Any, Callable, Mapping, Optional

from repro.bench.snapshot import flatten_summary, make_snapshot
from repro.obs.logging import get_logger

__all__ = ["BenchRunner", "Suite", "SUITES", "repo_root"]

_log = get_logger("bench.runner")


@dataclass(frozen=True)
class Suite:
    """A named subset of the benchmarks directory."""

    name: str
    paths: tuple[str, ...]
    description: str


SUITES: dict[str, Suite] = {
    "counting": Suite(
        "counting",
        ("bench_counting_scoring.py",),
        "counting-backend scoring ablation (the CI perf-gate subset)",
    ),
    "scalability": Suite(
        "scalability",
        ("bench_scalability.py",),
        "imputation latency vs training-corpus size",
    ),
    "timing": Suite(
        "timing",
        ("bench_fig11_timing.py",),
        "figure 11 train/impute wall-time regeneration",
    ),
    "quality": Suite(
        "quality",
        ("bench_quality_obs.py",),
        "quality-observability enabled-path cost and drift/ECE signals",
    ),
    "tracing": Suite(
        "tracing",
        ("bench_serve_tracing.py",),
        "serving-tier tracing: no-op span and per-request attribution cost",
    ),
    "overload": Suite(
        "overload",
        ("bench_serve_overload.py",),
        "overload protection: per-request admission + brownout cost",
    ),
    "all": Suite(
        "all",
        ("",),  # the whole benchmarks/ directory
        "every figure benchmark (slow: full paper regeneration)",
    ),
}


def repo_root() -> pathlib.Path:
    """The checkout root (where ``benchmarks/`` and the baseline live)."""
    return pathlib.Path(__file__).resolve().parents[3]


CollectFn = Callable[[int], Mapping[str, Mapping[str, Any]]]
"""One repeat: repeat index -> {module: scalar summary}."""


class BenchRunner:
    """Run a suite N times and build the v2 snapshot document."""

    def __init__(
        self,
        suite: str = "counting",
        repeats: int = 3,
        seed: int = 0,
        bench_dir: Optional[pathlib.Path] = None,
        collect: Optional[CollectFn] = None,
    ) -> None:
        if suite not in SUITES:
            raise ValueError(
                f"unknown suite {suite!r}; one of {', '.join(sorted(SUITES))}"
            )
        if repeats < 1:
            raise ValueError(f"repeats must be >= 1, got {repeats}")
        self.suite = SUITES[suite]
        self.repeats = repeats
        self.seed = seed
        self.bench_dir = (
            bench_dir if bench_dir is not None else repo_root() / "benchmarks"
        )
        self._collect = collect if collect is not None else self._collect_subprocess

    # -- one repeat -----------------------------------------------------------

    def _collect_subprocess(self, repeat: int) -> dict[str, dict[str, Any]]:
        """Run the suite's bench modules once; return module summaries."""
        if not self.bench_dir.is_dir():
            raise FileNotFoundError(
                f"benchmarks directory not found at {self.bench_dir} "
                "(kamel bench needs a source checkout)"
            )
        targets = [str(self.bench_dir / p) if p else str(self.bench_dir)
                   for p in self.suite.paths]
        root = self.bench_dir.parent
        with tempfile.TemporaryDirectory(prefix="kamel-bench-") as tmp:
            cmd = [
                sys.executable, "-m", "pytest", *targets,
                "-q", "-p", "no:cacheprovider", "--metrics-out", tmp,
            ]
            proc = subprocess.run(
                cmd, cwd=root, capture_output=True, text=True,
                env=self._subprocess_env(root),
            )
            if proc.returncode != 0:
                raise RuntimeError(
                    f"bench suite {self.suite.name!r} failed (exit "
                    f"{proc.returncode}):\n{proc.stdout[-2000:]}\n{proc.stderr[-2000:]}"
                )
            summaries: dict[str, dict[str, Any]] = {}
            for path in sorted(pathlib.Path(tmp).glob("BENCH_*.json")):
                module = path.stem.removeprefix("BENCH_")
                if module == "observability":
                    continue  # the merged doc, not a module snapshot
                with open(path) as handle:
                    registry_snapshot = json.load(handle)
                from repro.bench.snapshot import scalar_summary

                summaries[module] = scalar_summary(registry_snapshot)
            if not summaries:
                raise RuntimeError(
                    f"bench suite {self.suite.name!r} produced no module "
                    f"snapshots in {tmp}"
                )
            return summaries

    @staticmethod
    def _subprocess_env(root: pathlib.Path) -> dict[str, str]:
        import os

        env = dict(os.environ)
        src = str(root / "src")
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = f"{src}{os.pathsep}{existing}" if existing else src
        return env

    # -- the run --------------------------------------------------------------

    def run(self) -> dict[str, Any]:
        """Execute all repeats, aggregate, and return the v2 snapshot."""
        module_runs: dict[str, list[dict[str, float]]] = {}
        for repeat in range(self.repeats):
            _log.info(
                "bench repeat starting",
                extra={"data": {
                    "suite": self.suite.name,
                    "repeat": repeat + 1,
                    "of": self.repeats,
                }},
            )
            for module, summary in self._collect(repeat).items():
                module_runs.setdefault(module, []).append(
                    flatten_summary(summary)
                )
        return make_snapshot(
            module_runs, seed=self.seed, repo_root=self.bench_dir.parent
        )
