"""CSV input/output for WGS84 trajectory data.

The interchange format is the simplest thing a taxi data dump provides:
one row per GPS fix with a trajectory id, latitude, longitude, and a
timestamp. :func:`read_latlon_csv` groups rows into per-trajectory record
lists (ordered by timestamp); :func:`write_latlon_csv` writes imputation
results back, flagging the newly inserted points.
"""

from __future__ import annotations

import csv
import pathlib
from typing import Sequence, Union

from repro.errors import EmptyInputError, KamelError
from repro.geo import LocalProjection, Trajectory
from repro.geo.adapter import LatLonRecord

PathLike = Union[str, pathlib.Path]


def read_latlon_csv(
    path: PathLike,
    id_column: str = "traj_id",
    lat_column: str = "lat",
    lon_column: str = "lon",
    time_column: str = "t",
) -> list[tuple[str, list[LatLonRecord]]]:
    """Parse a CSV of GPS fixes into per-trajectory record lists.

    Rows are grouped by ``id_column`` (first-appearance order) and sorted
    by timestamp within each trajectory; a missing/empty time field
    yields ``None`` timestamps and preserves file order.
    """
    path = pathlib.Path(path)
    grouped: dict[str, list[LatLonRecord]] = {}
    with path.open(newline="") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None:
            raise EmptyInputError(f"{path} has no header row")
        missing = {id_column, lat_column, lon_column} - set(reader.fieldnames)
        if missing:
            raise KamelError(f"{path} lacks required columns: {sorted(missing)}")
        has_time = time_column in reader.fieldnames
        for line_no, row in enumerate(reader, start=2):
            try:
                lat = float(row[lat_column])
                lon = float(row[lon_column])
            except (TypeError, ValueError) as exc:
                raise KamelError(f"{path}:{line_no}: bad coordinate") from exc
            t = None
            if has_time and row[time_column] not in (None, ""):
                try:
                    t = float(row[time_column])
                except ValueError as exc:
                    raise KamelError(f"{path}:{line_no}: bad timestamp") from exc
            grouped.setdefault(row[id_column], []).append((lat, lon, t))
    if not grouped:
        raise EmptyInputError(f"{path} contains no data rows")
    out = []
    for traj_id, records in grouped.items():
        if all(r[2] is not None for r in records):
            records = sorted(records, key=lambda r: r[2])
        out.append((traj_id, records))
    return out


def write_latlon_csv(
    path: PathLike,
    trajectories: Sequence[Trajectory],
    projection: LocalProjection,
    imputed_flags: Sequence[Sequence[bool]] = (),
) -> None:
    """Write trajectories back as WGS84 rows.

    ``imputed_flags`` (parallel to ``trajectories``, one bool per point)
    populates an ``imputed`` column marking points the system inserted;
    omitted flags default to 0.
    """
    path = pathlib.Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["traj_id", "lat", "lon", "t", "imputed"])
        for index, trajectory in enumerate(trajectories):
            flags = (
                imputed_flags[index]
                if index < len(imputed_flags)
                else [False] * len(trajectory)
            )
            for p, flag in zip(trajectory.points, flags):
                lat, lon = projection.to_latlon(p)
                writer.writerow(
                    [
                        trajectory.traj_id,
                        f"{lat:.7f}",
                        f"{lon:.7f}",
                        "" if p.t is None else f"{p.t:.3f}",
                        int(bool(flag)),
                    ]
                )


def imputed_point_flags(sparse: Trajectory, dense: Trajectory) -> list[bool]:
    """Flag which points of ``dense`` were inserted by imputation.

    Walks both point sequences in order; points of ``dense`` that match
    the next sparse anchor (by coordinates) are original fixes.
    """
    flags: list[bool] = []
    anchors = sparse.points
    cursor = 0
    for p in dense.points:
        if (
            cursor < len(anchors)
            and p.x == anchors[cursor].x
            and p.y == anchors[cursor].y
        ):
            flags.append(False)
            cursor += 1
        else:
            flags.append(True)
    return flags
