"""Persistence: save/load a trained KAMEL system to a directory.

The paper stores its model repository in "a disk-based hierarchical
pyramid data structure" and serves imputation from the precomputed models.
This package provides that durability layer: :func:`save_kamel` writes a
trained system (configuration, vocabulary, every pyramid model, the
trajectory store, and the detokenization cluster metadata) to a directory,
and :func:`load_kamel` restores it ready to impute — without retraining.
"""

from repro.io.serialize import load_kamel, save_kamel
from repro.io.csvio import imputed_point_flags, read_latlon_csv, write_latlon_csv

__all__ = [
    "imputed_point_flags",
    "load_kamel",
    "read_latlon_csv",
    "save_kamel",
    "write_latlon_csv",
]
