"""Directory-based serialization of a trained :class:`repro.core.Kamel`.

Layout::

    <directory>/
      config.json        KamelConfig fields
      system.json        vocabulary, inferred speed, gap threshold, pyramid
      store.json         tokenized training trajectories
      detokenizer.json   per-cell DBSCAN cluster metadata
      drift.json         training-distribution reference sketch (drift baseline)
      models/            one file per stored model
        single_<l>_<i>_<j>.json / .npz       (counting / bert payload)
        neighbor_<...>__<...>.json / .npz
        global.json / .npz                   ("No Part." variant)

Counting models serialize to JSON; BERT models to an ``.npz`` of parameter
arrays plus an embedded JSON header with the architecture.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from typing import Callable, Optional, Union

import numpy as np

from repro.core.config import KamelConfig
from repro.core.kamel import Kamel
from repro.core.partitioning import CellKey, PairKey, PyramidIndex, StoredModel
from repro.core.detokenization import CellClusters, DirectionalCluster
from repro.mlm.counting import CountingMaskedLM
from repro.core.tokenization import TokenSequence
from repro.errors import KamelError, NotFittedError
from repro.geo import BoundingBox, Point
from repro.mlm.base import MaskedModel
from repro.mlm.bert import BertConfig, BertMaskedLM, BertModel
from repro.mlm.counting import CountingMaskedLM
from repro.mlm.vocab import Vocabulary

_FORMAT_VERSION = 1


# -- model payloads -----------------------------------------------------------


def _save_model(model: MaskedModel, path: pathlib.Path) -> str:
    """Write one masked model; returns the file name actually used."""
    if isinstance(model, CountingMaskedLM):
        target = path.with_suffix(".json")
        target.write_text(json.dumps(model.to_dict()))
        return target.name
    if isinstance(model, BertMaskedLM):
        if model.model is None:
            raise KamelError("cannot serialize an untrained BERT model")
        target = path.with_suffix(".npz")
        header = {
            "bert_config": dataclasses.asdict(model.model.config),
            "num_training_tokens": model.num_training_tokens,
        }
        state = {f"param/{k}": v for k, v in model.model.state_dict().items()}
        np.savez(target, __header__=json.dumps(header), **state)
        return target.name
    raise KamelError(f"unsupported model type {type(model).__name__}")


def _load_model(path: pathlib.Path) -> MaskedModel:
    if path.suffix == ".json":
        return CountingMaskedLM.from_dict(json.loads(path.read_text()))
    if path.suffix == ".npz":
        with np.load(path, allow_pickle=False) as archive:
            header = json.loads(str(archive["__header__"]))
            state = {
                key[len("param/"):]: archive[key]
                for key in archive.files
                if key.startswith("param/")
            }
        config = BertConfig(**header["bert_config"])
        wrapper = BertMaskedLM(config)
        wrapper.model = BertModel(config)
        wrapper.model.load_state_dict(state)
        wrapper.model.eval()
        wrapper._num_training_tokens = header["num_training_tokens"]
        return wrapper
    raise KamelError(f"unrecognized model file {path.name!r}")


ModelLoader = Callable[[str], MaskedModel]
"""Maps a manifest file name (e.g. ``single_2_1_3.json``) to a model."""


class ModelStore:
    """Read-only, lazily-loading view over a saved system's ``models/`` dir.

    Safe for concurrent use from multiple worker processes on the same
    directory: construction parses ``manifest.json`` once into immutable
    metadata, and every :meth:`load` call opens — and closes — its *own*
    file handle via :func:`_load_model`.  No file handle or mutable parse
    state is ever shared, so N processes (or threads) can materialize the
    same model simultaneously without corruption.  This is the loading
    path behind the sharded serving tier (:mod:`repro.serve`), where each
    worker touches only the slice of the pyramid its partition queries.
    """

    def __init__(self, directory: Union[str, pathlib.Path]) -> None:
        self.root = pathlib.Path(directory)
        self.models_dir = self.root / "models"
        manifest_path = self.root / "manifest.json"
        if not manifest_path.exists():
            raise KamelError(f"no manifest.json under {self.root}")
        manifest = json.loads(manifest_path.read_text())
        entries: dict[str, dict] = {}
        for key_name, entry in manifest.get("single", {}).items():
            entries[entry["file"]] = {"group": "single", "key": key_name, **entry}
        for pair_name, entry in manifest.get("neighbor", {}).items():
            entries[entry["file"]] = {"group": "neighbor", "key": pair_name, **entry}
        if manifest.get("global"):
            name = manifest["global"]["file"]
            entries[name] = {"group": "global", "key": "global", "file": name}
        self._entries = entries

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, file_name: str) -> bool:
        return file_name in self._entries

    def file_names(self) -> list[str]:
        """All model file names in the manifest, sorted."""
        return sorted(self._entries)

    def entry(self, file_name: str) -> dict:
        """Manifest metadata for one model file (a copy; mutation-safe)."""
        if file_name not in self._entries:
            raise KamelError(f"model file {file_name!r} not in manifest")
        return dict(self._entries[file_name])

    def load(self, file_name: str) -> MaskedModel:
        """Parse one model from disk; a fresh object every call."""
        if file_name not in self._entries:
            raise KamelError(f"model file {file_name!r} not in manifest")
        return _load_model(self.models_dir / file_name)


# -- json helpers --------------------------------------------------------------


def _bbox_to_list(box: BoundingBox) -> list[float]:
    return [box.min_x, box.min_y, box.max_x, box.max_y]


def _bbox_from_list(values: list[float]) -> BoundingBox:
    return BoundingBox(*values)


def _cell_key_name(key: CellKey) -> str:
    return "_".join(str(v) for v in key)


def _cell_key_from_name(name: str) -> CellKey:
    level, i, j = (int(v) for v in name.split("_"))
    return (level, i, j)


# -- top-level save/load ----------------------------------------------------------


def save_kamel(system: Kamel, directory: Union[str, pathlib.Path]) -> pathlib.Path:
    """Persist a trained system; returns the directory written."""
    if not system.is_fitted:
        raise NotFittedError("cannot save an unfitted Kamel system")
    assert system.tokenizer is not None and system.store is not None
    assert system.detokenizer is not None
    root = pathlib.Path(directory)
    models_dir = root / "models"
    models_dir.mkdir(parents=True, exist_ok=True)

    root.joinpath("config.json").write_text(
        json.dumps({"version": _FORMAT_VERSION, **dataclasses.asdict(system.config)})
    )

    repo = system.repository
    pyramid = repo.pyramid if repo else None
    system_meta = {
        "vocabulary": system.tokenizer.vocabulary.to_list(),
        "max_speed_mps": system.max_speed_mps,
        "gap_threshold_m": system.gap_threshold_m,
        "pyramid": (
            {
                "root": _bbox_to_list(pyramid.root),
                "height": pyramid.height,
            }
            if pyramid is not None
            else None
        ),
        "token_counts": (
            {_cell_key_name(k): v for k, v in repo._token_counts.items()}
            if repo
            else {}
        ),
    }
    root.joinpath("system.json").write_text(json.dumps(system_meta))

    store_payload = [
        {"id": seq.traj_id, "tokens": list(seq.tokens), "times": list(seq.times)}
        for seq in system.store
    ]
    root.joinpath("store.json").write_text(json.dumps(store_payload))

    detok_payload = {}
    for cell, info in system.detokenizer._cells.items():
        detok_payload[f"{cell[0]}_{cell[1]}"] = {
            "clusters": [
                [c.centroid.x, c.centroid.y, c.direction, c.size]
                for c in info.clusters
            ],
            "data_centroid": (
                [info.data_centroid.x, info.data_centroid.y]
                if info.data_centroid
                else None
            ),
            "num_points": info.num_points,
        }
    root.joinpath("detokenizer.json").write_text(json.dumps(detok_payload))

    if system.reference_sketch is not None:
        # The drift baseline travels with the model store: a *loaded*
        # system can then compare serving traffic to what it was fit on.
        root.joinpath("drift.json").write_text(
            json.dumps(system.reference_sketch.to_dict())
        )

    manifest: dict = {"single": {}, "neighbor": {}, "global": None}
    if repo is not None:
        for key, stored in repo._single.items():
            name = _save_model(stored.model, models_dir / f"single_{_cell_key_name(key)}")
            manifest["single"][_cell_key_name(key)] = _stored_meta(stored, name)
        for pair, stored in repo._neighbor.items():
            pair_name = f"{_cell_key_name(pair[0])}__{_cell_key_name(pair[1])}"
            name = _save_model(stored.model, models_dir / f"neighbor_{pair_name}")
            manifest["neighbor"][pair_name] = _stored_meta(stored, name)
    if system._global_model is not None:
        manifest["global"] = {
            "file": _save_model(system._global_model, models_dir / "global")
        }
    root.joinpath("manifest.json").write_text(json.dumps(manifest))
    return root


def _stored_meta(stored: StoredModel, file_name: str) -> dict:
    return {
        "file": file_name,
        "region": _bbox_to_list(stored.region),
        "token_count": stored.token_count,
        "kind": stored.kind,
        "builds": stored.builds,
    }


def load_kamel(
    directory: Union[str, pathlib.Path],
    model_loader: Optional[ModelLoader] = None,
) -> Kamel:
    """Restore a system saved with :func:`save_kamel`, ready to impute.

    ``model_loader`` overrides how each manifest entry becomes a
    :class:`~repro.mlm.base.MaskedModel`.  The default parses every file
    eagerly; the serving tier passes a loader that returns lazy proxies so
    a worker only pays for the models its partition actually queries.
    """
    root = pathlib.Path(directory)
    config_payload = json.loads(root.joinpath("config.json").read_text())
    version = config_payload.pop("version", None)
    if version != _FORMAT_VERSION:
        raise KamelError(f"unsupported model directory version {version!r}")
    # JSON turns tuples into lists; KamelConfig fields that are tuples
    # must be coerced back so the dataclass compares equal after a round trip.
    config_payload["cell_size_candidates"] = tuple(config_payload["cell_size_candidates"])
    config = KamelConfig(**config_payload)

    system = Kamel(config)
    system._build_components(config.cell_edge_m)
    assert system.tokenizer is not None and system.store is not None
    assert system.repository is not None and system.detokenizer is not None

    meta = json.loads(root.joinpath("system.json").read_text())
    system.tokenizer.vocabulary = Vocabulary.from_list(meta["vocabulary"])
    # The store and repository share the tokenizer; rebuild vocab first.
    system.max_speed_mps = meta["max_speed_mps"]
    system._gap_threshold_m = meta["gap_threshold_m"]

    from repro.core.constraints import PassthroughConstraints, SpatialConstraints

    constraints_cls = (
        SpatialConstraints if config.use_constraints else PassthroughConstraints
    )
    system.constraints = constraints_cls(
        system.tokenizer, config, system.max_speed_mps or 14.0
    )

    for entry in json.loads(root.joinpath("store.json").read_text()):
        system.store.add(
            TokenSequence(entry["id"], tuple(entry["tokens"]), tuple(entry["times"]))
        )

    repo = system.repository
    if meta["pyramid"] is not None:
        repo.pyramid = PyramidIndex(
            _bbox_from_list(meta["pyramid"]["root"]), meta["pyramid"]["height"]
        )
    repo._token_counts = {
        _cell_key_from_name(k): v for k, v in meta["token_counts"].items()
    }

    manifest = json.loads(root.joinpath("manifest.json").read_text())
    models_dir = root / "models"
    if model_loader is None:
        model_loader = lambda name: _load_model(models_dir / name)  # noqa: E731
    for key_name, entry in manifest["single"].items():
        repo._single[_cell_key_from_name(key_name)] = _stored_from_meta(
            entry, model_loader
        )
    for pair_name, entry in manifest["neighbor"].items():
        a, b = pair_name.split("__")
        pair: PairKey = (_cell_key_from_name(a), _cell_key_from_name(b))
        repo._neighbor[pair] = _stored_from_meta(entry, model_loader)
    if manifest["global"] is not None:
        system._global_model = model_loader(manifest["global"]["file"])

    detok_payload = json.loads(root.joinpath("detokenizer.json").read_text())
    cells = {}
    for name, entry in detok_payload.items():
        q, r = (int(v) for v in name.split("_"))
        clusters = tuple(
            DirectionalCluster(Point(x, y), direction, size)
            for x, y, direction, size in entry["clusters"]
        )
        centroid = (
            Point(*entry["data_centroid"]) if entry["data_centroid"] else None
        )
        cells[(q, r)] = CellClusters(clusters, centroid, entry["num_points"])
    system.detokenizer._cells = cells

    drift_path = root.joinpath("drift.json")
    if drift_path.exists():
        from repro.obs.drift import DistributionSketch

        system._reference_sketch = DistributionSketch.from_dict(
            json.loads(drift_path.read_text())
        )
    # Directories that predate drift.json load without a sketch;
    # enable_quality_observability rebuilds one from the token store.

    if config.enable_fallback_model and len(system.store) > 0:
        # The counting-rung fallback model is derived state: O(tokens) to
        # refit from the restored store, so it is rebuilt rather than saved.
        fallback = CountingMaskedLM()
        fallback.fit(
            [s.tokens for s in system.store], len(system.tokenizer.vocabulary)
        )
        system._fallback_model = fallback

    system._fitted = True
    return system


def _stored_from_meta(entry: dict, model_loader: ModelLoader) -> StoredModel:
    return StoredModel(
        model=model_loader(entry["file"]),
        region=_bbox_from_list(entry["region"]),
        token_count=entry["token_count"],
        kind=entry["kind"],
        builds=entry["builds"],
    )
