"""Synthetic load generation against the sharded serving pool.

``kamel loadtest`` answers the scalability question with numbers instead
of architecture diagrams: train (or reuse) a porto-like system, drive N
sparse synthetic trajectories from the roadnet simulator through a
:class:`~repro.serve.pool.ServingPool` at a target rate, and report
sustained trajectories/sec, p50/p99 submit-to-result latency, per-rung
degradation counts, and worker-death/replay accounting.

Correctness rides along: with ``verify=True`` (the default) the same
feed also runs through the plain single-process
:class:`~repro.core.streaming.StreamingImputationService` and every
pooled output is compared **bit-for-bit** against the baseline —
imputation is deterministic, sharding must not change a single
coordinate. The report's ``mismatches`` must be 0 and ``lost`` must be 0
for the run to count as passing.

Overload mode (``offered_tps`` / ``offered_multiplier``, the CLI's
``--offered-tps 2x``) flips the question from "how fast is it?" to
"what breaks first?": the pool runs with bounded admission queues, a
per-request deadline, and the brownout controller, and is driven
*past* capacity on purpose. The report then accounts for every
submitted trajectory as completed, shed (typed ``OverloadError``
results), or expired-in-queue — overload may refuse work, never lose
it — and records the brownout step-down/step-up cycle. Bit-for-bit
verification is disabled in this mode because deadline and brownout
degradation change outputs by design.

The numbers land in a schema-v2 bench snapshot (``BENCH_serve.json``)
via :mod:`repro.bench`, so loadtest runs diff with ``kamel stats a b``
and feed the CI perf gate like every other benchmark in the repo.
Throughput scaling is machine-dependent (worker processes need cores to
run on); latency percentiles include queueing delay by design.
"""

from __future__ import annotations

import json
import pathlib
import tempfile
import time
from dataclasses import dataclass, field
from typing import Optional, Union

from repro.core.config import KamelConfig
from repro.core.kamel import Kamel
from repro.core.streaming import StreamingConfig, StreamingImputationService
from repro.errors import ConfigError
from repro.geo import Trajectory
from repro.io.serialize import load_kamel, save_kamel
from repro.obs import instrument as obs
from repro.obs.export import write_chrome_trace
from repro.obs.logging import get_logger
from repro.obs.metrics import get_registry
from repro.resilience.journal import trajectory_to_payload
from repro.roadnet.datasets import make_porto_like
from repro.roadnet.simulator import SimulatorConfig, TrajectorySimulator
from repro.serve.overload import ADMISSION_POLICIES, ADMISSION_SHED, BrownoutConfig
from repro.serve.pool import ServeConfig, ServingPool

__all__ = ["LoadtestConfig", "LoadtestReport", "run_loadtest"]

_log = get_logger("serve.loadtest")


@dataclass(frozen=True)
class LoadtestConfig:
    """One reproducible loadtest scenario."""

    workers: int = 4
    trajectories: int = 200
    """Synthetic trajectories to drive through the pool."""
    rate_tps: float = 0.0
    """Target submission rate (trajectories/sec); 0 floods as fast as
    the router accepts."""
    sparseness_m: float = 800.0
    """Gap width imposed on the simulated (dense) trips before serving."""
    train_trajectories: int = 200
    """Trips in the porto-like training workload (when training here)."""
    seed: int = 7
    strategy: str = "hash"
    lru_capacity: int = 64
    max_model_calls: int = 600
    """Per-segment model-call budget for the trained system (bounds the
    loadtest's wall time without changing its determinism)."""
    verify: bool = True
    """Also run the single-process baseline and compare bit-for-bit."""
    kill_worker_after: Optional[int] = None
    """Chaos: shard 0 dies on its Nth task (exercises journal replay)."""
    journal: bool = True
    trace: bool = False
    """Workers ship span trees; the pool merges them (``trace_out``)."""
    trace_out: Optional[str] = None
    """Write the merged multi-worker Chrome trace here (implies nothing
    by itself — set ``trace`` too; the CLI couples them)."""
    flight_out: Optional[str] = None
    """Write the flight recorder's ``/slow`` payload (JSON) here — the
    file ``kamel tail`` reads offline."""
    flight_capacity: int = 64
    """Slowest requests the pool's flight recorder retains."""
    offered_tps: float = 0.0
    """Overload mode: drive the pool at this *offered* rate regardless of
    what it completes (admission control and deadlines absorb the
    excess). 0 disables overload mode (see ``offered_multiplier``)."""
    offered_multiplier: Optional[float] = None
    """Overload mode, self-calibrating: first measure the pool's
    sustained capacity on a short flood, then offer ``multiplier ×
    capacity`` (e.g. 2.0 ≈ "2x capacity"). Overrides ``offered_tps``."""
    calibrate_trajectories: int = 30
    """Trajectories in the capacity-calibration flood."""
    max_queue_depth: Optional[int] = None
    """Per-shard admission bound; defaults to 8 in overload mode."""
    admission: str = ADMISSION_SHED
    request_deadline_s: Optional[float] = None
    """Per-request deadline stamped on every envelope (overload mode
    reports expired-in-queue counts against it)."""
    brownout: bool = True
    """Run the pool's brownout controller (overload mode only)."""

    @property
    def overload(self) -> bool:
        """Whether this scenario drives the pool past capacity."""
        return self.offered_tps > 0 or self.offered_multiplier is not None

    def __post_init__(self) -> None:
        if self.trajectories < 1:
            raise ConfigError(
                f"trajectories must be >= 1, got {self.trajectories!r}"
            )
        if self.rate_tps < 0:
            raise ConfigError(f"rate_tps must be >= 0, got {self.rate_tps!r}")
        if self.offered_tps < 0:
            raise ConfigError(
                f"offered_tps must be >= 0, got {self.offered_tps!r}"
            )
        if self.offered_multiplier is not None and self.offered_multiplier <= 0:
            raise ConfigError(
                "offered_multiplier must be positive, got "
                f"{self.offered_multiplier!r}"
            )
        if self.admission not in ADMISSION_POLICIES:
            raise ConfigError(
                f"admission must be one of {ADMISSION_POLICIES}, "
                f"got {self.admission!r}"
            )
        if self.request_deadline_s is not None and self.request_deadline_s <= 0:
            raise ConfigError(
                "request_deadline_s must be positive, got "
                f"{self.request_deadline_s!r}"
            )


@dataclass
class LoadtestReport:
    """Everything one loadtest run measured."""

    workers: int
    strategy: str
    trajectories: int
    completed: int
    lost: int
    duplicates: int
    wall_s: float
    throughput_tps: float
    latency_p50_ms: float
    latency_p99_ms: float
    latency_mean_ms: float
    rungs: dict[str, int] = field(default_factory=dict)
    segments: int = 0
    failed_segments: int = 0
    degraded_segments: int = 0
    model_calls: int = 0
    quarantined: int = 0
    worker_deaths: int = 0
    journal_replayed: int = 0
    worker_errors: int = 0
    verified: bool = False
    mismatches: int = 0
    single_wall_s: Optional[float] = None
    single_throughput_tps: Optional[float] = None
    speedup_vs_single: Optional[float] = None
    stages: dict[str, dict] = field(default_factory=dict)
    """Per-stage attribution (count/mean/p50/p99/max + exemplar trace
    id), from the pool's flight recorder."""
    traced_requests: int = 0
    """Results that arrived with worker span trees attached."""
    trace_out: Optional[str] = None
    flight_out: Optional[str] = None
    overload: bool = False
    """Whether this run intentionally drove the pool past capacity."""
    offered_tps: float = 0.0
    capacity_tps: Optional[float] = None
    """Measured sustained capacity (calibration flood), when available."""
    shed: int = 0
    expired: int = 0
    peak_queue_depth: int = 0
    max_queue_depth: Optional[int] = None
    admission: Optional[str] = None
    brownout: Optional[dict] = None
    """Final brownout controller state + transition log, when enabled."""

    @property
    def accounted(self) -> bool:
        """Every submitted trajectory ended as completed, shed, or
        expired — overload may refuse work but must never lose it."""
        return (
            self.lost == 0
            and self.completed + self.shed + self.expired == self.trajectories
        )

    @property
    def ok(self) -> bool:
        """Every input accounted for and (if verified) byte-identical."""
        return (
            self.accounted
            and self.mismatches == 0
            and self.completed > 0
        )

    def to_dict(self) -> dict:
        out = dict(self.__dict__)
        out["ok"] = self.ok
        out["accounted"] = self.accounted
        return out

    def bench_metrics(self) -> dict[str, float]:
        """The flat metric dict one repeat contributes to BENCH_serve.json."""
        metrics: dict[str, float] = {
            "repro.serve.trajectories": float(self.trajectories),
            "repro.serve.workers": float(self.workers),
            "repro.serve.wall_seconds": self.wall_s,
            "repro.serve.throughput_tps": self.throughput_tps,
            "repro.serve.latency_p50_ms": self.latency_p50_ms,
            "repro.serve.latency_p99_ms": self.latency_p99_ms,
            "repro.serve.latency_mean_ms": self.latency_mean_ms,
            "repro.serve.segments": float(self.segments),
            "repro.serve.failed_segments": float(self.failed_segments),
            "repro.serve.degraded_segments": float(self.degraded_segments),
            "repro.serve.model_calls": float(self.model_calls),
            "repro.serve.worker_deaths": float(self.worker_deaths),
            "repro.serve.journal_replayed": float(self.journal_replayed),
            "repro.serve.mismatches": float(self.mismatches),
            "repro.serve.lost": float(self.lost),
        }
        for rung, count in sorted(self.rungs.items()):
            metrics[f"repro.serve.rung.{rung}"] = float(count)
        for stage, row in sorted(self.stages.items()):
            if row.get("p99") is not None:
                metrics[f"repro.serve.stage.{stage}_p99_ms"] = (
                    float(row["p99"]) * 1000.0
                )
        if self.single_throughput_tps is not None:
            metrics["repro.serve.single_throughput_tps"] = self.single_throughput_tps
        if self.speedup_vs_single is not None:
            metrics["repro.serve.speedup_vs_single"] = self.speedup_vs_single
        if self.overload:
            metrics["repro.serve.offered_tps"] = self.offered_tps
            metrics["repro.serve.shed"] = float(self.shed)
            metrics["repro.serve.expired"] = float(self.expired)
            metrics["repro.serve.peak_queue_depth"] = float(
                self.peak_queue_depth
            )
            if self.capacity_tps is not None:
                metrics["repro.serve.capacity_tps"] = self.capacity_tps
            if self.brownout is not None:
                metrics["repro.serve.brownout_steps"] = float(
                    len(self.brownout.get("transitions", []))
                )
        return metrics


def _make_feed(config: LoadtestConfig, dataset) -> list[Trajectory]:
    """Fresh synthetic traffic over the training city (ids disjoint from
    the training trips), sparsified the way the paper's evaluation does."""
    simulator = TrajectorySimulator(
        dataset.network,
        SimulatorConfig(sample_interval_s=15.0, seed=config.seed + 101),
    )
    dense = simulator.simulate(config.trajectories, id_prefix="load")
    return [t.sparsify(config.sparseness_m) for t in dense]


def _run_baseline(
    config: LoadtestConfig, model_dir: str, feed: list[Trajectory]
) -> tuple[dict[str, list[dict]], float]:
    """The single-process reference: same saved system, same feed."""
    system = load_kamel(model_dir)
    service = StreamingImputationService(system, StreamingConfig())
    outputs: dict[str, list[dict]] = {}
    started = time.perf_counter()
    for trajectory in feed:
        results = service.process(trajectory)
        outputs[trajectory.traj_id] = [
            trajectory_to_payload(r.trajectory) for r in results
        ]
    return outputs, time.perf_counter() - started


def _count_mismatches(
    baseline: dict[str, list[dict]], results: dict[str, dict]
) -> int:
    """Trajectories whose pooled output differs from the baseline at all
    (payloads are raw float lists, so equality is bit-for-bit)."""
    mismatches = 0
    for traj_id, expected in baseline.items():
        message = results.get(traj_id)
        if message is None or message.get("trips") != expected:
            mismatches += 1
    return mismatches


def _calibrate_capacity(
    config: LoadtestConfig, model_dir: str, dataset
) -> float:
    """Measure the pool's sustained capacity with a short flood.

    Runs a *separate* plain (unbounded, no-brownout) pool over a small
    disjoint feed and floods it; completed/wall is the trajectories/sec
    the fleet can actually absorb, which overload mode then multiplies
    to pick an offered rate guaranteed to exceed it.
    """
    simulator = TrajectorySimulator(
        dataset.network,
        SimulatorConfig(sample_interval_s=15.0, seed=config.seed + 202),
    )
    dense = simulator.simulate(config.calibrate_trajectories, id_prefix="cal")
    feed = [t.sparsify(config.sparseness_m) for t in dense]
    serve_config = ServeConfig(
        workers=config.workers,
        strategy=config.strategy,
        lru_capacity=config.lru_capacity,
        journal_dir=None,
    )
    get_registry().reset(prefix="repro.serve")
    pool = ServingPool(str(model_dir), serve_config)
    with pool:
        started = time.perf_counter()
        for trajectory in feed:
            pool.submit(trajectory)
        pool.drain()
        wall = time.perf_counter() - started
    capacity = pool.stats.completed / wall if wall > 0 else 0.0
    _log.info(
        "capacity calibrated",
        extra={"data": {
            "trajectories": len(feed),
            "wall_s": round(wall, 3),
            "capacity_tps": round(capacity, 2),
        }},
    )
    return capacity


def run_loadtest(
    config: LoadtestConfig,
    workdir: Optional[Union[str, pathlib.Path]] = None,
) -> LoadtestReport:
    """Run one loadtest scenario end to end; returns the report.

    ``workdir`` holds the saved model directory and the per-shard
    journals (inspectable afterwards); omitted, a temporary directory is
    used and cleaned up.
    """
    cleanup: Optional[tempfile.TemporaryDirectory] = None
    if workdir is None:
        cleanup = tempfile.TemporaryDirectory(prefix="kamel-loadtest-")
        workdir = cleanup.name
    workdir = pathlib.Path(workdir)
    try:
        dataset = make_porto_like(
            n_trajectories=config.train_trajectories, seed=config.seed
        )
        train, _ = dataset.split(seed=1)
        system = Kamel(KamelConfig(max_model_calls=config.max_model_calls))
        system.fit(train)
        model_dir = workdir / "model"
        save_kamel(system, model_dir)
        del system  # workers load their own lazy copies

        feed = _make_feed(config, dataset)
        _log.info(
            "loadtest feed ready",
            extra={"data": {
                "trajectories": len(feed),
                "points": sum(len(t) for t in feed),
                "model_dir": str(model_dir),
            }},
        )

        verify = config.verify
        if verify and config.overload:
            # Deadlines and brownout legitimately change outputs (cheaper
            # rungs, expired requests), so bit-for-bit comparison against
            # the unhurried baseline would report false mismatches.
            _log.info(
                "overload mode: bit-for-bit verification disabled "
                "(deadline/brownout degradation changes outputs by design)"
            )
            verify = False
        baseline: Optional[dict[str, list[dict]]] = None
        single_wall: Optional[float] = None
        if verify:
            baseline, single_wall = _run_baseline(config, str(model_dir), feed)

        capacity_tps: Optional[float] = None
        rate = config.rate_tps
        if config.overload:
            if config.offered_multiplier is not None:
                capacity_tps = _calibrate_capacity(
                    config, str(model_dir), dataset
                )
                rate = config.offered_multiplier * capacity_tps
            else:
                rate = config.offered_tps
        max_depth = config.max_queue_depth
        if max_depth is None and config.overload:
            max_depth = 8
        brownout_cfg: Optional[BrownoutConfig] = None
        if config.overload and config.brownout and max_depth is not None:
            brownout_cfg = BrownoutConfig(
                high_depth=max(2, (3 * max_depth) // 4),
                low_depth=max(1, max_depth // 4),
                interval_s=0.1,
            )

        journal_dir = str(workdir / "journal") if config.journal else None
        serve_config = ServeConfig(
            workers=config.workers,
            strategy=config.strategy,
            lru_capacity=config.lru_capacity,
            journal_dir=journal_dir,
            crash_worker_after=config.kill_worker_after,
            chaos_seed=config.seed,
            trace=config.trace,
            flight_capacity=config.flight_capacity,
            max_queue_depth=max_depth,
            admission_policy=config.admission,
            request_deadline_s=config.request_deadline_s,
            brownout=brownout_cfg,
        )
        # A fresh latency window per run: the serve metrics may carry
        # state from an earlier run in this process (tests, repeats).
        get_registry().reset(prefix="repro.serve")
        pool = ServingPool(str(model_dir), serve_config)
        interval = 1.0 / rate if rate > 0 else 0.0
        with pool:
            started = time.perf_counter()
            next_submit = started
            for trajectory in feed:
                if interval:
                    delay = next_submit - time.perf_counter()
                    if delay > 0:
                        time.sleep(delay)
                    next_submit += interval
                pool.submit(trajectory)
            results = pool.drain()
            wall = time.perf_counter() - started
            if pool.brownout is not None:
                # Let the controller observe the drained queues and walk
                # back to level 0 — the recovery half of the hysteresis
                # cycle the report asserts on. Excluded from the wall.
                pool.brownout_settle()

        latency = obs.histogram("repro.serve.latency_seconds")
        p50 = latency.quantile(0.5) or 0.0
        p99 = latency.quantile(0.99) or 0.0
        report = LoadtestReport(
            workers=config.workers,
            strategy=config.strategy,
            trajectories=len(feed),
            completed=pool.stats.completed,
            lost=pool.stats.lost,
            duplicates=pool.stats.duplicates,
            wall_s=wall,
            throughput_tps=pool.stats.completed / wall if wall > 0 else 0.0,
            latency_p50_ms=p50 * 1000.0,
            latency_p99_ms=p99 * 1000.0,
            latency_mean_ms=latency.mean * 1000.0,
            rungs=dict(pool.stats.rungs),
            segments=pool.stats.segments,
            failed_segments=pool.stats.failed_segments,
            degraded_segments=pool.stats.degraded_segments,
            model_calls=pool.stats.model_calls,
            quarantined=pool.stats.quarantined,
            worker_deaths=pool.stats.worker_deaths,
            journal_replayed=pool.stats.journal_replayed,
            worker_errors=pool.stats.errors,
            stages=pool.flight.stage_summary(),
            traced_requests=int(
                obs.counter("repro.serve.traced_requests_total").value
            ),
            overload=config.overload,
            offered_tps=rate if config.overload else 0.0,
            capacity_tps=capacity_tps,
            shed=pool.stats.shed,
            expired=pool.stats.expired,
            peak_queue_depth=pool.stats.peak_queue_depth,
            max_queue_depth=max_depth,
            admission=config.admission if max_depth is not None else None,
            brownout=(
                pool.brownout.to_dict() if pool.brownout is not None else None
            ),
        )
        if config.trace_out:
            write_chrome_trace(
                config.trace_out, pool.trace_roots, thread_names=pool.trace_lanes
            )
            report.trace_out = str(config.trace_out)
            _log.info(
                "merged chrome trace written",
                extra={"data": {
                    "path": str(config.trace_out),
                    "requests": len(pool.trace_roots),
                }},
            )
        if config.flight_out:
            pathlib.Path(config.flight_out).write_text(
                json.dumps(pool.flight.to_dict(), indent=2, default=float) + "\n"
            )
            report.flight_out = str(config.flight_out)
        if baseline is not None:
            report.verified = True
            report.mismatches = _count_mismatches(baseline, results)
            report.single_wall_s = single_wall
            if single_wall and single_wall > 0:
                report.single_throughput_tps = len(feed) / single_wall
                if report.throughput_tps > 0:
                    report.speedup_vs_single = (
                        report.throughput_tps / report.single_throughput_tps
                    )
        _log.info("loadtest finished", extra={"data": report.to_dict()})
        return report
    finally:
        if cleanup is not None:
            cleanup.cleanup()
