"""The sharded serving pool: router, worker lifecycle, result accounting.

:class:`ServingPool` is the parent-side half of ``repro.serve``. It
spawns one worker process per shard (``multiprocessing`` ``spawn``
context — no inherited state, same behavior everywhere), routes each
submitted trajectory to a shard with a
:class:`~repro.serve.strategies.PartitionStrategy`, and collects results
from a shared queue.

Delivery semantics are **at-least-once from workers, exactly-once to the
caller**: a worker journals each task and may re-send results after a
crash-and-replay, and the pool deduplicates by trajectory id. A worker
that dies (detected via ``Process.is_alive`` while draining) is replaced
by a new incarnation on the *same* task queue with ``recover=True``, so
it first replays its shard journal — the failure-handling story of the
single-process service, lifted to a fleet.

The pool is also the fleet's observability point: per-worker registry
snapshots arriving on the result queue are merged
(:func:`~repro.obs.metrics.merge_snapshots`) with the parent's own
``repro.serve.*`` metrics into one ``/metrics`` view, served by
:class:`~repro.serve.aggregate.PoolMetricsServer` when
``metrics_port`` is set.

Every request is additionally **attributed**: ``submit`` stamps each
task envelope with a fresh trace id and the submit wall clock, the
worker reports when it dequeued the task and how long it processed, and
``_handle_result`` derives the five-stage latency breakdown
(:func:`~repro.obs.flight.stage_breakdown`) — feeding the
``repro.serve.stage.*`` histograms and the slowest-N
:class:`~repro.obs.flight.FlightRecorder` behind ``/slow`` and
``kamel tail``. With ``ServeConfig.trace`` on, workers also ship their
span trees; the pool rebases each tree onto its own timeline
(:func:`~repro.obs.tracing.clock_offset` difference), grafts it under a
synthetic ``serve.request`` root bracketed by ``serve.queue_wait`` and
``serve.result_transit`` spans, and keeps the merged roots in
``trace_roots`` for a fleet-wide Chrome trace (one lane per shard).
"""

from __future__ import annotations

import json
import multiprocessing as mp
import pathlib
import queue as queue_mod
import time
from dataclasses import dataclass, field
from typing import Optional, Union

from repro.core.partitioning import PyramidIndex
from repro.core.tokenization import make_grid
from repro.errors import ConfigError
from repro.geo import BoundingBox, Trajectory
from repro.obs import instrument as obs
from repro.obs.flight import FlightRecord, FlightRecorder, stage_breakdown
from repro.obs.logging import get_logger
from repro.obs.metrics import get_registry, merge_snapshots
from repro.obs.tracing import Span, clock_offset, new_trace_id
from repro.serve.strategies import PartitionStrategy, make_strategy
from repro.serve.worker import WorkerSpec, worker_main

__all__ = ["PoolStats", "ServeConfig", "ServingPool"]

_log = get_logger("serve.pool")


class _SyncQueue:
    """A synchronous many-writers/one-reader message channel.

    ``multiprocessing.Queue.put`` hands the object to a background feeder
    thread and returns immediately — so a worker that crashes hard right
    after ``put`` can lose the message, *after* it already journaled the
    task ``done``. That breaks the delivery fence the journal protocol
    relies on. This channel sends on a plain pipe under a cross-process
    lock instead: when ``put`` returns, the bytes are in the kernel pipe,
    and a subsequent ``os._exit`` cannot take them back.
    """

    def __init__(self, ctx) -> None:
        self._reader, self._writer = ctx.Pipe(duplex=False)
        self._lock = ctx.Lock()

    def put(self, obj) -> None:
        with self._lock:
            self._writer.send(obj)

    def get(self, timeout: Optional[float] = None):
        if not self._reader.poll(timeout):
            raise queue_mod.Empty
        return self._reader.recv()

    def get_nowait(self):
        return self.get(timeout=0)

    def close(self) -> None:
        self._reader.close()
        self._writer.close()


@dataclass(frozen=True)
class ServeConfig:
    """How the pool shards, recovers, and reports."""

    workers: int = 2
    strategy: str = "hash"
    """Partition strategy name (see :data:`repro.serve.strategies.STRATEGIES`)."""
    strategy_seed: int = 0
    lru_capacity: int = 64
    """Resident models per worker."""
    journal_dir: Optional[str] = None
    """Per-shard write-ahead journals (``worker-<shard>.jsonl``) live
    here. None disables durability: a worker death then loses its
    in-flight trajectory (drain times out instead of replaying it)."""
    metrics_port: Optional[int] = None
    """Serve aggregated /metrics + /healthz on this localhost port
    (0 picks a free ephemeral port); None starts no endpoint."""
    start_method: str = "spawn"
    drain_timeout_s: float = 300.0
    """Overall bound on one drain() call — the backstop against a lost
    task wedging the pool forever."""
    revive_dead_workers: bool = True
    max_revives_per_shard: int = 3
    """Backstop against a poisoned shard crash-looping: after this many
    respawns, the shard is left dead and drain() reports its work lost."""
    metrics_every: int = 25
    """Workers ship a registry snapshot every this many tasks."""
    crash_worker_after: Optional[int] = None
    """Chaos: shard 0's first incarnation dies on its Nth task."""
    chaos_seed: int = 0
    trip_gap_s: float = 600.0
    max_speed_mps: float = 60.0
    trace: bool = False
    """Workers collect span trees and ship them with every result; the
    pool merges them (clock-aligned) into ``trace_roots``. Stage
    attribution and the flight recorder work with this off — only the
    span trees need it."""
    trace_max_roots: int = 1000
    """Bound on both the worker tracer's root buffer and the pool's
    merged ``trace_roots``."""
    span_batch: int = 64
    """Root spans a worker ships per result (overflow dropped+counted)."""
    flight_capacity: int = 32
    """Slowest requests the pool's flight recorder retains."""

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ConfigError(f"workers must be >= 1, got {self.workers!r}")


@dataclass
class PoolStats:
    """Fleet-wide accounting over one pool lifetime."""

    submitted: int = 0
    completed: int = 0
    duplicates: int = 0
    journal_replayed: int = 0
    worker_deaths: int = 0
    errors: int = 0
    quarantined: int = 0
    trips: int = 0
    segments: int = 0
    failed_segments: int = 0
    degraded_segments: int = 0
    model_calls: int = 0
    declared_lost: int = 0
    """Trajectories explicitly written off when their shard was retired
    with no replacement worker."""
    rungs: dict[str, int] = field(default_factory=dict)

    @property
    def lost(self) -> int:
        """Submitted trajectories never accounted for (should be 0)."""
        return max(0, self.submitted - self.completed)


@dataclass(frozen=True)
class _Pending:
    """What the pool remembers about one in-flight trajectory."""

    shard: int
    submitted_pc: float
    """Submit time on this process's perf_counter clock (latency base)."""
    trace_id: str
    submit_epoch: float
    """Submit wall clock (the cross-process queue-wait base)."""


def _routing_context(
    model_dir: Union[str, pathlib.Path]
) -> tuple[object, Optional[BoundingBox]]:
    """Grid + data region for the router, read from the saved system's
    metadata only — no model files are parsed in the parent."""
    root = pathlib.Path(model_dir)
    config_payload = json.loads(root.joinpath("config.json").read_text())
    grid = make_grid(config_payload["grid_type"], config_payload["cell_edge_m"])
    meta = json.loads(root.joinpath("system.json").read_text())
    region: Optional[BoundingBox] = None
    if meta.get("pyramid") is not None:
        pyramid = PyramidIndex(
            BoundingBox(*meta["pyramid"]["root"]), meta["pyramid"]["height"]
        )
        keys = [
            tuple(int(v) for v in name.split("_"))
            for name in meta.get("token_counts", {})
        ]
        if keys:
            # The union of the deepest occupied pyramid cells hugs the
            # training data much tighter than the pyramid root (which is
            # padded out to a power-of-two square), so range sharding
            # stripes actual traffic, not empty margin.
            deepest = max(k[0] for k in keys)
            boxes = [pyramid.cell_bbox(k) for k in keys if k[0] == deepest]
            region = BoundingBox(
                min(b.min_x for b in boxes),
                min(b.min_y for b in boxes),
                max(b.max_x for b in boxes),
                max(b.max_y for b in boxes),
            )
        else:
            region = pyramid.root
    return grid, region


class ServingPool:
    """N worker processes behind a deterministic spatial router."""

    def __init__(
        self,
        model_dir: Union[str, pathlib.Path],
        config: Optional[ServeConfig] = None,
    ) -> None:
        self.model_dir = str(model_dir)
        self.config = config or ServeConfig()
        grid, region = _routing_context(self.model_dir)
        self.strategy: PartitionStrategy = make_strategy(
            self.config.strategy,
            self.config.workers,
            grid=grid,
            region=region,
            seed=self.config.strategy_seed,
        )
        self.stats = PoolStats()
        self.results: dict[str, dict] = {}
        self.worker_processed: dict[int, int] = {
            shard: 0 for shard in range(self.config.workers)
        }
        self.worker_snapshots: dict[int, dict] = {}
        self.worker_lru: dict[int, dict] = {}
        self._ctx = mp.get_context(self.config.start_method)
        self._task_queues: list = []
        self._result_queue = None
        self._procs: dict[int, mp.process.BaseProcess] = {}
        self._revives: dict[int, int] = {}
        self._incarnations = 0
        self._byes: set[int] = set()
        self._outstanding: dict[str, _Pending] = {}
        self._started = False
        self._stopping = False
        self.metrics_server = None
        self._clock_offset = clock_offset()
        self.flight = FlightRecorder(
            capacity=self.config.flight_capacity, registry=get_registry()
        )
        self.trace_roots: list[Span] = []
        """Merged, clock-aligned ``serve.request`` trees (tracing on),
        one Chrome-trace lane per shard; bounded by ``trace_max_roots``."""
        self.trace_lanes: dict[int, str] = {}
        """Synthetic thread id -> lane name for the merged trace."""

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "ServingPool":
        if self._started:
            return self
        self._result_queue = _SyncQueue(self._ctx)
        for shard in range(self.config.workers):
            self._task_queues.append(self._ctx.Queue())
            self._spawn(shard, recover=False)
        self._started = True
        if self.config.metrics_port is not None:
            from repro.serve.aggregate import PoolMetricsServer

            self.metrics_server = PoolMetricsServer(
                self, port=self.config.metrics_port
            ).start()
        _log.info(
            "serving pool started",
            extra={"data": {
                "workers": self.config.workers,
                "strategy": self.strategy.name,
                "model_dir": self.model_dir,
            }},
        )
        return self

    def _spec(self, shard: int, recover: bool) -> WorkerSpec:
        self._incarnations += 1
        crash_after = None
        if self.config.crash_worker_after is not None and shard == 0 and not recover:
            crash_after = self.config.crash_worker_after
        return WorkerSpec(
            worker_id=self._incarnations,
            shard=shard,
            model_dir=self.model_dir,
            lru_capacity=self.config.lru_capacity,
            journal_dir=self.config.journal_dir,
            recover=recover,
            crash_after=crash_after,
            chaos_seed=self.config.chaos_seed,
            metrics_every=self.config.metrics_every,
            trip_gap_s=self.config.trip_gap_s,
            max_speed_mps=self.config.max_speed_mps,
            trace=self.config.trace,
            trace_max_roots=self.config.trace_max_roots,
            span_batch=self.config.span_batch,
        )

    def _spawn(self, shard: int, recover: bool) -> None:
        spec = self._spec(shard, recover)
        proc = self._ctx.Process(
            target=worker_main,
            args=(spec, self._task_queues[shard], self._result_queue),
            name=f"kamel-serve-{shard}",
            daemon=True,
        )
        proc.start()
        self._procs[shard] = proc
        self._byes.discard(shard)

    def __enter__(self) -> "ServingPool":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- submission & draining ---------------------------------------------

    def submit(self, trajectory: Trajectory) -> int:
        """Route one trajectory to its shard; returns the shard index.

        The task goes out as an envelope carrying a fresh trace id and
        the submit wall clock, so the worker can join the request's
        trace and the pool can later split queue wait from processing.
        """
        if not self._started:
            raise ConfigError("pool not started (use start() or a with-block)")
        shard = self.strategy.shard_for(trajectory)
        trace_id = new_trace_id()
        self._outstanding[trajectory.traj_id] = _Pending(
            shard=shard,
            submitted_pc=time.perf_counter(),
            trace_id=trace_id,
            submit_epoch=time.time(),
        )
        self.stats.submitted += 1
        obs.count("repro.serve.submitted_total")
        obs.gauge("repro.serve.queue_depth").set(len(self._outstanding))
        self._task_queues[shard].put(
            {
                "trajectory": trajectory,
                "trace_id": trace_id,
                "submit_epoch": self._outstanding[trajectory.traj_id].submit_epoch,
            }
        )
        self._pump(0.0)
        return shard

    @property
    def outstanding(self) -> int:
        return len(self._outstanding)

    def drain(self, timeout: Optional[float] = None) -> dict[str, dict]:
        """Wait until every submitted trajectory has a result (or timeout).

        Returns the accumulated ``traj_id -> result message`` map. While
        idle, checks worker liveness and revives dead shards; on overall
        timeout it logs the unaccounted ids and returns what arrived —
        ``stats.lost`` then says how many never came back.
        """
        deadline = time.monotonic() + (
            timeout if timeout is not None else self.config.drain_timeout_s
        )
        while self._outstanding:
            if self._pump(0.25):
                continue
            self._check_workers()
            if not any(p.is_alive() for p in self._procs.values()):
                # Every shard is dead (revive cap hit or revival off) —
                # drain the queue's stragglers and give up early rather
                # than sleeping out the full timeout.
                if not self._pump(1.0):
                    _log.error(
                        "all workers dead with outstanding work",
                        extra={"data": {"outstanding": len(self._outstanding)}},
                    )
                    break
                continue
            if time.monotonic() > deadline:
                _log.error(
                    "drain timed out with unaccounted trajectories",
                    extra={"data": {
                        "outstanding": len(self._outstanding),
                        "ids": sorted(self._outstanding)[:10],
                    }},
                )
                break
        return self.results

    def process_all(
        self, trajectories, timeout: Optional[float] = None
    ) -> dict[str, dict]:
        """Submit a batch and drain it (the loadtest / CLI convenience)."""
        for trajectory in trajectories:
            self.submit(trajectory)
        return self.drain(timeout=timeout)

    # -- message handling --------------------------------------------------

    def _pump(self, timeout: float) -> bool:
        """Handle at most one worker message; True if one was handled."""
        try:
            if timeout > 0:
                message = self._result_queue.get(timeout=timeout)
            else:
                message = self._result_queue.get_nowait()
        except queue_mod.Empty:
            return False
        self._handle(message)
        return True

    def _handle(self, message: dict) -> None:
        kind = message.get("kind")
        if kind == "result":
            self._handle_result(message)
        elif kind in ("metrics", "bye"):
            self.worker_snapshots[message["shard"]] = message["snapshot"]
            if kind == "bye":
                self._byes.add(message["shard"])
                self.worker_lru[message["shard"]] = message.get("lru", {})
        # "ready" needs no bookkeeping beyond existing process state.

    def _handle_result(self, message: dict) -> None:
        traj_id = message["traj_id"]
        if traj_id in self.results:
            # At-least-once delivery: a replayed task can re-send a result
            # the dead worker already delivered. Exactly-once is restored
            # here, by id.
            self.stats.duplicates += 1
            obs.count("repro.serve.duplicate_results_total")
            self._outstanding.pop(traj_id, None)
            return
        handle_epoch = time.time()
        self.results[traj_id] = message
        self.stats.completed += 1
        obs.count("repro.serve.results_total")
        pending = self._outstanding.pop(traj_id, None)
        latency_s = None
        if pending is not None:
            latency_s = time.perf_counter() - pending.submitted_pc
            obs.observe("repro.serve.latency_seconds", latency_s)
        obs.gauge("repro.serve.queue_depth").set(len(self._outstanding))
        shard = message["shard"]
        self.worker_processed[shard] = self.worker_processed.get(shard, 0) + 1
        if message.get("replayed"):
            self.stats.journal_replayed += 1
        if message.get("error"):
            self.stats.errors += 1
        if message.get("quarantined"):
            self.stats.quarantined += 1
        self.stats.trips += len(message.get("trips", ()))
        self.stats.segments += message.get("segments", 0)
        self.stats.failed_segments += message.get("failed", 0)
        self.stats.degraded_segments += message.get("degraded", 0)
        self.stats.model_calls += message.get("model_calls", 0)
        for rung, count in message.get("rungs", {}).items():
            self.stats.rungs[rung] = self.stats.rungs.get(rung, 0) + count
        if pending is not None and latency_s is not None:
            self._attribute(message, pending, latency_s, handle_epoch)

    # -- tail-latency attribution -------------------------------------------

    def _attribute(
        self,
        message: dict,
        pending: _Pending,
        latency_s: float,
        handle_epoch: float,
    ) -> None:
        """Derive the request's stage breakdown, feed the flight recorder,
        and (tracing on) merge the shipped span tree into ``trace_roots``."""
        process_s = float(message.get("process_s") or 0.0)
        start_epoch = message.get("start_epoch")
        if start_epoch is None:
            # A worker that never reported its dequeue time: the best
            # split available is processing vs everything-else.
            queue_wait = 0.0
            transit = latency_s - process_s
        else:
            queue_wait = start_epoch - pending.submit_epoch
            transit = handle_epoch - start_epoch - process_s
        roots: list[Span] = []
        if message.get("spans"):
            offset = float(message.get("clock_offset") or 0.0) - self._clock_offset
            roots = [Span.from_dict(d).shift(offset) for d in message["spans"]]
            obs.count("repro.serve.traced_requests_total")
        record = FlightRecord(
            trace_id=message.get("trace_id") or pending.trace_id,
            traj_id=message["traj_id"],
            latency_s=latency_s,
            stages=stage_breakdown(process_s, queue_wait, transit, roots),
            shard=pending.shard,
            worker_id=message.get("worker_id"),
            replayed=bool(message.get("replayed")),
            error=message.get("error"),
            context={
                "strategy": self.strategy.name,
                "trips": len(message.get("trips", ())),
                "segments": message.get("segments", 0),
                "model_calls": message.get("model_calls", 0),
                "rungs": dict(message.get("rungs", {})),
            },
        )
        if roots:
            request_root = self._request_tree(
                record, pending, roots, process_s, start_epoch, handle_epoch
            )
            record.roots = [request_root]
            self.trace_roots.append(request_root)
            if len(self.trace_roots) > self.config.trace_max_roots:
                del self.trace_roots[
                    : len(self.trace_roots) - self.config.trace_max_roots
                ]
        self.flight.record(record)

    def _request_tree(
        self,
        record: FlightRecord,
        pending: _Pending,
        roots: list[Span],
        process_s: float,
        start_epoch: Optional[float],
        handle_epoch: float,
    ) -> Span:
        """Graft the worker's (rebased) span trees under one synthetic
        ``serve.request`` root spanning submit-to-result, with synthetic
        ``serve.queue_wait`` / ``serve.result_transit`` brackets. The
        whole tree lands on one lane per shard in the merged trace."""
        lane = pending.shard + 1
        self.trace_lanes.setdefault(lane, f"shard {pending.shard}")
        submit_pc = pending.submit_epoch - self._clock_offset
        handle_pc = handle_epoch - self._clock_offset
        request = Span(
            "serve.request",
            {
                "traj_id": record.traj_id,
                "shard": pending.shard,
                "worker_id": record.worker_id,
                "replayed": record.replayed,
            },
            trace_id=record.trace_id,
        )
        request.start_s = submit_pc
        request.end_s = max(submit_pc, handle_pc)
        if start_epoch is not None:
            start_pc = start_epoch - self._clock_offset
            wait = Span("serve.queue_wait", trace_id=record.trace_id)
            wait.start_s = submit_pc
            wait.end_s = max(submit_pc, start_pc)
            request.children.append(wait)
            request.children.extend(roots)
            transit = Span("serve.result_transit", trace_id=record.trace_id)
            transit.end_s = handle_pc
            transit.start_s = min(max(submit_pc, start_pc + process_s), handle_pc)
            request.children.append(transit)
        else:
            request.children.extend(roots)
        for span_obj in request.walk():
            span_obj.thread_id = lane
        return request

    # -- worker liveness ---------------------------------------------------

    def _check_workers(self) -> None:
        for shard, proc in list(self._procs.items()):
            if proc.is_alive() or shard in self._byes:
                continue
            proc.join(timeout=1.0)
            self.stats.worker_deaths += 1
            obs.count("repro.serve.worker_deaths_total")
            _log.warning(
                "worker died; respawning its shard",
                extra={"data": {
                    "shard": shard,
                    "exitcode": proc.exitcode,
                    "revive": self.config.revive_dead_workers,
                }},
            )
            revives = self._revives.get(shard, 0)
            if (
                self.config.revive_dead_workers
                and not self._stopping
                and revives < self.config.max_revives_per_shard
            ):
                # Same task queue (undrained work survives), recover=True
                # (the replacement replays the shard journal first).
                self._revives[shard] = revives + 1
                self._spawn(shard, recover=True)
            else:
                self._byes.add(shard)
                self._declare_lost(shard)

    def _declare_lost(self, shard: int) -> None:
        """Write off a retired shard's in-flight work.

        No worker will ever drain this shard's queue again, so its
        outstanding trajectories can't complete: drop them from the
        in-flight map (so ``queue_depth`` and ``drain()`` reflect
        reality instead of waiting out the timeout) and count them.
        A straggler result already in the pipe is still accepted by
        ``_handle_result`` — it just no longer has a pending entry.
        """
        lost = [
            traj_id
            for traj_id, pending in self._outstanding.items()
            if pending.shard == shard
        ]
        if not lost:
            return
        for traj_id in lost:
            del self._outstanding[traj_id]
        self.stats.declared_lost += len(lost)
        obs.count("repro.serve.lost_total", len(lost))
        obs.gauge("repro.serve.queue_depth").set(len(self._outstanding))
        _log.error(
            "shard retired with in-flight work; declaring it lost",
            extra={"data": {
                "shard": shard,
                "lost": len(lost),
                "ids": sorted(lost)[:10],
            }},
        )

    # -- shutdown ----------------------------------------------------------

    def stop(self, timeout: float = 20.0) -> None:
        """Sentinel every shard, collect goodbyes, reap the processes."""
        if not self._started or self._stopping:
            return
        self._stopping = True
        for task_queue in self._task_queues:
            task_queue.put(None)
        deadline = time.monotonic() + timeout
        while len(self._byes) < len(self._procs) and time.monotonic() < deadline:
            if self._pump(0.25):
                continue
            if not any(p.is_alive() for p in self._procs.values()):
                break
        for proc in self._procs.values():
            proc.join(timeout=5.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5.0)
        while self._pump(0.0):
            pass
        for task_queue in self._task_queues:
            task_queue.close()
            task_queue.cancel_join_thread()
        self._result_queue.close()
        if self.metrics_server is not None:
            self.metrics_server.stop()
            self.metrics_server = None
        _log.info(
            "serving pool stopped",
            extra={"data": {
                "completed": self.stats.completed,
                "worker_deaths": self.stats.worker_deaths,
            }},
        )

    # -- fleet observability -----------------------------------------------

    def merged_snapshot(self) -> dict[str, dict]:
        """One fleet-wide metrics snapshot: the parent's ``repro.serve.*``
        metrics merged with the latest snapshot from every worker."""
        parent = get_registry().snapshot(prefix="repro.serve")
        return merge_snapshots([parent, *self.worker_snapshots.values()])

    def healthz(self) -> dict:
        """The aggregated health document behind ``/healthz``."""
        per_shard_outstanding: dict[int, int] = {}
        for pending in self._outstanding.values():
            per_shard_outstanding[pending.shard] = (
                per_shard_outstanding.get(pending.shard, 0) + 1
            )
        workers = []
        for shard in sorted(self._procs):
            proc = self._procs[shard]
            workers.append(
                {
                    "shard": shard,
                    "alive": proc.is_alive(),
                    "pid": proc.pid,
                    "processed": self.worker_processed.get(shard, 0),
                    "queue_depth": per_shard_outstanding.get(shard, 0),
                }
            )
        alive = all(w["alive"] for w in workers) if workers else False
        return {
            "status": "ok" if alive and self.stats.lost == 0 else "degraded",
            "strategy": self.strategy.name,
            "submitted": self.stats.submitted,
            "completed": self.stats.completed,
            "outstanding": len(self._outstanding),
            "duplicates": self.stats.duplicates,
            "worker_deaths": self.stats.worker_deaths,
            "journal_replayed": self.stats.journal_replayed,
            "declared_lost": self.stats.declared_lost,
            "workers": workers,
        }
