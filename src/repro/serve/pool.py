"""The sharded serving pool: router, worker lifecycle, result accounting.

:class:`ServingPool` is the parent-side half of ``repro.serve``. It
spawns one worker process per shard (``multiprocessing`` ``spawn``
context — no inherited state, same behavior everywhere), routes each
submitted trajectory to a shard with a
:class:`~repro.serve.strategies.PartitionStrategy`, and collects results
from a shared queue.

Delivery semantics are **at-least-once from workers, exactly-once to the
caller**: a worker journals each task and may re-send results after a
crash-and-replay, and the pool deduplicates by trajectory id. A worker
that dies (detected via ``Process.is_alive`` while draining) is replaced
by a new incarnation on the *same* task queue with ``recover=True``, so
it first replays its shard journal — the failure-handling story of the
single-process service, lifted to a fleet.

The pool is also the fleet's observability point: per-worker registry
snapshots arriving on the result queue are merged
(:func:`~repro.obs.metrics.merge_snapshots`) with the parent's own
``repro.serve.*`` metrics into one ``/metrics`` view, served by
:class:`~repro.serve.aggregate.PoolMetricsServer` when
``metrics_port`` is set.

Every request is additionally **attributed**: ``submit`` stamps each
task envelope with a fresh trace id and the submit wall clock, the
worker reports when it dequeued the task and how long it processed, and
``_handle_result`` derives the five-stage latency breakdown
(:func:`~repro.obs.flight.stage_breakdown`) — feeding the
``repro.serve.stage.*`` histograms and the slowest-N
:class:`~repro.obs.flight.FlightRecorder` behind ``/slow`` and
``kamel tail``. With ``ServeConfig.trace`` on, workers also ship their
span trees; the pool rebases each tree onto its own timeline
(:func:`~repro.obs.tracing.clock_offset` difference), grafts it under a
synthetic ``serve.request`` root bracketed by ``serve.queue_wait`` and
``serve.result_transit`` spans, and keeps the merged roots in
``trace_roots`` for a fleet-wide Chrome trace (one lane per shard).
"""

from __future__ import annotations

import json
import multiprocessing as mp
import pathlib
import queue as queue_mod
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Optional, Union

from repro.core.partitioning import PyramidIndex
from repro.core.tokenization import make_grid
from repro.errors import ConfigError
from repro.geo import BoundingBox, Trajectory
from repro.obs import instrument as obs
from repro.obs.flight import FlightRecord, FlightRecorder, stage_breakdown
from repro.obs.logging import get_logger
from repro.obs.metrics import get_registry, merge_snapshots
from repro.obs.tracing import Span, clock_offset, new_trace_id
from repro.resilience.chaos import ChaosConfig
from repro.serve.overload import (
    ADMISSION_BLOCK,
    ADMISSION_POLICIES,
    ADMISSION_SHED,
    ADMISSION_SHED_OLDEST,
    BrownoutConfig,
    BrownoutController,
)
from repro.serve.strategies import PartitionStrategy, make_strategy
from repro.serve.worker import WorkerSpec, worker_main

__all__ = ["PoolStats", "ServeConfig", "ServingPool"]

_log = get_logger("serve.pool")


class _SyncQueue:
    """A synchronous many-writers/one-reader message channel.

    ``multiprocessing.Queue.put`` hands the object to a background feeder
    thread and returns immediately — so a worker that crashes hard right
    after ``put`` can lose the message, *after* it already journaled the
    task ``done``. That breaks the delivery fence the journal protocol
    relies on. This channel sends on a plain pipe under a cross-process
    lock instead: when ``put`` returns, the bytes are in the kernel pipe,
    and a subsequent ``os._exit`` cannot take them back.
    """

    def __init__(self, ctx) -> None:
        self._reader, self._writer = ctx.Pipe(duplex=False)
        self._lock = ctx.Lock()

    def put(self, obj) -> None:
        with self._lock:
            self._writer.send(obj)

    def get(self, timeout: Optional[float] = None):
        if not self._reader.poll(timeout):
            raise queue_mod.Empty
        return self._reader.recv()

    def get_nowait(self):
        return self.get(timeout=0)

    def close(self) -> None:
        self._reader.close()
        self._writer.close()


@dataclass(frozen=True)
class ServeConfig:
    """How the pool shards, recovers, and reports."""

    workers: int = 2
    strategy: str = "hash"
    """Partition strategy name (see :data:`repro.serve.strategies.STRATEGIES`)."""
    strategy_seed: int = 0
    lru_capacity: int = 64
    """Resident models per worker."""
    journal_dir: Optional[str] = None
    """Per-shard write-ahead journals (``worker-<shard>.jsonl``) live
    here. None disables durability: a worker death then loses its
    in-flight trajectory (drain times out instead of replaying it)."""
    metrics_port: Optional[int] = None
    """Serve aggregated /metrics + /healthz on this localhost port
    (0 picks a free ephemeral port); None starts no endpoint."""
    start_method: str = "spawn"
    drain_timeout_s: float = 300.0
    """Overall bound on one drain() call — the backstop against a lost
    task wedging the pool forever."""
    revive_dead_workers: bool = True
    max_revives_per_shard: int = 3
    """Backstop against a poisoned shard crash-looping: after this many
    respawns, the shard is left dead and drain() reports its work lost."""
    metrics_every: int = 25
    """Workers ship a registry snapshot every this many tasks."""
    crash_worker_after: Optional[int] = None
    """Chaos: shard 0's first incarnation dies on its Nth task."""
    chaos_seed: int = 0
    trip_gap_s: float = 600.0
    max_speed_mps: float = 60.0
    trace: bool = False
    """Workers collect span trees and ship them with every result; the
    pool merges them (clock-aligned) into ``trace_roots``. Stage
    attribution and the flight recorder work with this off — only the
    span trees need it."""
    trace_max_roots: int = 1000
    """Bound on both the worker tracer's root buffer and the pool's
    merged ``trace_roots``."""
    span_batch: int = 64
    """Root spans a worker ships per result (overflow dropped+counted)."""
    flight_capacity: int = 32
    """Slowest requests the pool's flight recorder retains."""
    max_queue_depth: Optional[int] = None
    """Per-shard bound on *queued* work (submitted, not yet dequeued).
    None (the default) keeps the legacy unbounded queue; with it set,
    ``submit`` applies ``admission_policy`` when the shard is full."""
    admission_policy: str = ADMISSION_SHED
    """What a full shard does to a new request: ``block`` (wait up to
    ``submit_block_timeout_s``, then shed), ``shed`` (refuse the
    newcomer), or ``shed-oldest`` (evict the oldest queued request)."""
    submit_block_timeout_s: float = 30.0
    queue_prefetch: int = 2
    """With admission control on, envelopes kept in the OS-level task
    queue per shard; the rest wait pool-side where ``shed-oldest`` can
    still evict them. Irrelevant when ``max_queue_depth`` is None."""
    request_deadline_s: Optional[float] = None
    """Absolute per-request deadline stamped on every envelope at
    submit. Workers drop tasks whose deadline passed in the queue
    (counted ``expired``) and thread the remaining budget into the
    degradation ladder."""
    late_degrade: bool = True
    """Workers cap the ladder for requests whose deadline budget is
    mostly gone (see :class:`repro.serve.worker.WorkerSpec`)."""
    brownout: Optional[BrownoutConfig] = None
    """Enable the pool-side brownout controller: under sustained queue
    pressure every shard's ladder is capped (full → reduced beam →
    counting), stepping back up with hysteresis. None disables it."""
    worker_chaos: Optional[ChaosConfig] = None
    """Chaos injected into every worker (IPC delays, stalls); shard 0's
    ``crash_worker_after`` (when set) is merged on top."""

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ConfigError(f"workers must be >= 1, got {self.workers!r}")
        if self.admission_policy not in ADMISSION_POLICIES:
            raise ConfigError(
                f"admission_policy must be one of {ADMISSION_POLICIES}, "
                f"got {self.admission_policy!r}"
            )
        if self.max_queue_depth is not None and self.max_queue_depth < 1:
            raise ConfigError(
                f"max_queue_depth must be >= 1, got {self.max_queue_depth!r}"
            )
        if self.queue_prefetch < 1:
            raise ConfigError(
                f"queue_prefetch must be >= 1, got {self.queue_prefetch!r}"
            )
        if self.request_deadline_s is not None and self.request_deadline_s <= 0:
            raise ConfigError(
                "request_deadline_s must be positive, got "
                f"{self.request_deadline_s!r}"
            )


@dataclass
class PoolStats:
    """Fleet-wide accounting over one pool lifetime."""

    submitted: int = 0
    completed: int = 0
    duplicates: int = 0
    journal_replayed: int = 0
    worker_deaths: int = 0
    errors: int = 0
    quarantined: int = 0
    trips: int = 0
    segments: int = 0
    failed_segments: int = 0
    degraded_segments: int = 0
    model_calls: int = 0
    declared_lost: int = 0
    """Trajectories explicitly written off when their shard was retired
    with no replacement worker."""
    shed: int = 0
    """Requests refused (or evicted) by admission control — surfaced as
    typed :class:`~repro.errors.OverloadError` results, never lost."""
    expired: int = 0
    """Requests whose deadline passed while queued; the worker dropped
    them on dequeue without doing the work."""
    peak_queue_depth: int = 0
    """Deepest any single shard's queued backlog ever got (the bound the
    overload loadtest asserts against ``max_queue_depth``)."""
    rungs: dict[str, int] = field(default_factory=dict)

    @property
    def lost(self) -> int:
        """Submitted trajectories never accounted for (should be 0).

        Shed and expired requests are *accounted*: every submission ends
        up exactly one of completed / shed / expired / lost."""
        return max(0, self.submitted - self.completed - self.shed - self.expired)


@dataclass(frozen=True)
class _Pending:
    """What the pool remembers about one in-flight trajectory."""

    shard: int
    submitted_pc: float
    """Submit time on this process's perf_counter clock (latency base)."""
    trace_id: str
    submit_epoch: float
    """Submit wall clock (the cross-process queue-wait base)."""


def _routing_context(
    model_dir: Union[str, pathlib.Path]
) -> tuple[object, Optional[BoundingBox]]:
    """Grid + data region for the router, read from the saved system's
    metadata only — no model files are parsed in the parent."""
    root = pathlib.Path(model_dir)
    config_payload = json.loads(root.joinpath("config.json").read_text())
    grid = make_grid(config_payload["grid_type"], config_payload["cell_edge_m"])
    meta = json.loads(root.joinpath("system.json").read_text())
    region: Optional[BoundingBox] = None
    if meta.get("pyramid") is not None:
        pyramid = PyramidIndex(
            BoundingBox(*meta["pyramid"]["root"]), meta["pyramid"]["height"]
        )
        keys = [
            tuple(int(v) for v in name.split("_"))
            for name in meta.get("token_counts", {})
        ]
        if keys:
            # The union of the deepest occupied pyramid cells hugs the
            # training data much tighter than the pyramid root (which is
            # padded out to a power-of-two square), so range sharding
            # stripes actual traffic, not empty margin.
            deepest = max(k[0] for k in keys)
            boxes = [pyramid.cell_bbox(k) for k in keys if k[0] == deepest]
            region = BoundingBox(
                min(b.min_x for b in boxes),
                min(b.min_y for b in boxes),
                max(b.max_x for b in boxes),
                max(b.max_y for b in boxes),
            )
        else:
            region = pyramid.root
    return grid, region


class ServingPool:
    """N worker processes behind a deterministic spatial router."""

    def __init__(
        self,
        model_dir: Union[str, pathlib.Path],
        config: Optional[ServeConfig] = None,
    ) -> None:
        self.model_dir = str(model_dir)
        self.config = config or ServeConfig()
        grid, region = _routing_context(self.model_dir)
        self.strategy: PartitionStrategy = make_strategy(
            self.config.strategy,
            self.config.workers,
            grid=grid,
            region=region,
            seed=self.config.strategy_seed,
        )
        self.stats = PoolStats()
        self.results: dict[str, dict] = {}
        self.worker_processed: dict[int, int] = {
            shard: 0 for shard in range(self.config.workers)
        }
        self.worker_snapshots: dict[int, dict] = {}
        self.worker_lru: dict[int, dict] = {}
        self._ctx = mp.get_context(self.config.start_method)
        self._task_queues: list = []
        self._result_queue = None
        self._procs: dict[int, mp.process.BaseProcess] = {}
        self._revives: dict[int, int] = {}
        self._incarnations = 0
        self._byes: set[int] = set()
        self._outstanding: dict[str, _Pending] = {}
        # Admission bookkeeping: envelopes wait pool-side in _buffers
        # (evictable) and only queue_prefetch of them sit in the OS-level
        # task queue at a time; _in_queue / _inflight track the
        # queued-vs-dequeued split the two gauges report.
        self._buffers: dict[int, deque] = {
            shard: deque() for shard in range(self.config.workers)
        }
        self._in_queue: dict[int, int] = {
            shard: 0 for shard in range(self.config.workers)
        }
        self._inflight: dict[int, int] = {
            shard: 0 for shard in range(self.config.workers)
        }
        self._in_queue_ids: set[str] = set()
        self._dequeued_ids: set[str] = set()
        self._control = None
        self.brownout: Optional[BrownoutController] = (
            BrownoutController(self.config.brownout)
            if self.config.brownout is not None
            else None
        )
        self._started = False
        self._stopping = False
        self.metrics_server = None
        self._clock_offset = clock_offset()
        self.flight = FlightRecorder(
            capacity=self.config.flight_capacity, registry=get_registry()
        )
        self.trace_roots: list[Span] = []
        """Merged, clock-aligned ``serve.request`` trees (tracing on),
        one Chrome-trace lane per shard; bounded by ``trace_max_roots``."""
        self.trace_lanes: dict[int, str] = {}
        """Synthetic thread id -> lane name for the merged trace."""

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "ServingPool":
        if self._started:
            return self
        self._result_queue = _SyncQueue(self._ctx)
        if self.brownout is not None:
            # Workers read the current brownout level per task; writes
            # are pool-only, reads are a single int — a shared Value is
            # exactly enough machinery.
            self._control = self._ctx.Value("i", 0)
        for shard in range(self.config.workers):
            self._task_queues.append(self._ctx.Queue())
            self._spawn(shard, recover=False)
        self._started = True
        if self.config.metrics_port is not None:
            from repro.serve.aggregate import PoolMetricsServer

            self.metrics_server = PoolMetricsServer(
                self, port=self.config.metrics_port
            ).start()
        _log.info(
            "serving pool started",
            extra={"data": {
                "workers": self.config.workers,
                "strategy": self.strategy.name,
                "model_dir": self.model_dir,
            }},
        )
        return self

    def _spec(self, shard: int, recover: bool) -> WorkerSpec:
        self._incarnations += 1
        crash_after = None
        if self.config.crash_worker_after is not None and shard == 0 and not recover:
            crash_after = self.config.crash_worker_after
        return WorkerSpec(
            worker_id=self._incarnations,
            shard=shard,
            model_dir=self.model_dir,
            lru_capacity=self.config.lru_capacity,
            journal_dir=self.config.journal_dir,
            recover=recover,
            crash_after=crash_after,
            chaos_seed=self.config.chaos_seed,
            metrics_every=self.config.metrics_every,
            trip_gap_s=self.config.trip_gap_s,
            max_speed_mps=self.config.max_speed_mps,
            trace=self.config.trace,
            trace_max_roots=self.config.trace_max_roots,
            span_batch=self.config.span_batch,
            late_degrade=self.config.late_degrade,
            worker_chaos=self.config.worker_chaos,
        )

    def _spawn(self, shard: int, recover: bool) -> None:
        spec = self._spec(shard, recover)
        proc = self._ctx.Process(
            target=worker_main,
            args=(spec, self._task_queues[shard], self._result_queue, self._control),
            name=f"kamel-serve-{shard}",
            daemon=True,
        )
        proc.start()
        self._procs[shard] = proc
        self._byes.discard(shard)

    def __enter__(self) -> "ServingPool":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- submission & draining ---------------------------------------------

    def submit(self, trajectory: Trajectory) -> int:
        """Route one trajectory to its shard; returns the shard index.

        The task goes out as an envelope carrying a fresh trace id, the
        submit wall clock, and (with ``request_deadline_s`` set) the
        absolute deadline, so the worker can join the request's trace,
        split queue wait from processing, and drop tasks that expired in
        the queue.

        With ``max_queue_depth`` set, a full shard applies the admission
        policy first; a refused trajectory still returns its shard — it
        lands in ``results`` as a typed ``OverloadError`` entry instead
        of being queued (never silently dropped).
        """
        if not self._started:
            raise ConfigError("pool not started (use start() or a with-block)")
        shard = self.strategy.shard_for(trajectory)
        self.stats.submitted += 1
        obs.count("repro.serve.submitted_total")
        max_depth = self.config.max_queue_depth
        if max_depth is not None and self._depth(shard) >= max_depth:
            if not self._make_room(shard):
                self._shed(trajectory.traj_id, shard, "shard queue full")
                self._pump(0.0)
                return shard
        submit_epoch = time.time()
        trace_id = new_trace_id()
        self._outstanding[trajectory.traj_id] = _Pending(
            shard=shard,
            submitted_pc=time.perf_counter(),
            trace_id=trace_id,
            submit_epoch=submit_epoch,
        )
        envelope = {
            "trajectory": trajectory,
            "trace_id": trace_id,
            "submit_epoch": submit_epoch,
        }
        if self.config.request_deadline_s is not None:
            envelope["deadline_epoch"] = submit_epoch + self.config.request_deadline_s
            envelope["deadline_budget_s"] = self.config.request_deadline_s
        self._buffers[shard].append(envelope)
        self._feed(shard)
        self._note_depth()
        self._brownout_tick()
        self._pump(0.0)
        return shard

    # -- admission control ---------------------------------------------------

    def _depth(self, shard: int) -> int:
        """Queued (not yet dequeued) tasks for one shard: the pool-side
        buffer plus what already sits in the OS-level task queue."""
        return len(self._buffers[shard]) + self._in_queue.get(shard, 0)

    def _make_room(self, shard: int) -> bool:
        """Apply the admission policy to a full shard.

        Returns True when the newcomer may now be queued; False means
        the caller sheds the newcomer instead.
        """
        policy = self.config.admission_policy
        if policy == ADMISSION_SHED:
            return False
        if policy == ADMISSION_SHED_OLDEST:
            buffer = self._buffers[shard]
            if not buffer:
                # Everything queued is already in the OS-level pipe where
                # it can't be recalled — shed the newcomer instead.
                return False
            victim = buffer.popleft()
            victim_id = victim["trajectory"].traj_id
            self._outstanding.pop(victim_id, None)
            self._shed(victim_id, shard, "evicted by a newer request")
            return True
        # block: pump results until the shard has room or the timeout
        # passes (then shed — blocking forever is the failure mode this
        # whole layer exists to remove).
        wait_until = time.monotonic() + self.config.submit_block_timeout_s
        assert self.config.max_queue_depth is not None
        obs.count("repro.serve.submit_blocked_total")
        while self._depth(shard) >= self.config.max_queue_depth:
            if not self._pump(0.05):
                self._check_workers()
            self._brownout_tick()
            if time.monotonic() > wait_until:
                return False
        return True

    def _shed(self, traj_id: str, shard: int, why: str) -> None:
        """Refuse one request: account it and surface a typed error result."""
        policy = self.config.admission_policy
        self.stats.shed += 1
        obs.count("repro.serve.shed_total")
        self.results[traj_id] = {
            "kind": "result",
            "traj_id": traj_id,
            "shard": shard,
            "worker_id": None,
            "shed": True,
            "policy": policy,
            "error": f"OverloadError: {why} (shard {shard}, policy {policy})",
            "error_type": "OverloadError",
            "start_epoch": None,
            "process_s": 0.0,
            "trips": [],
            "segments": 0,
            "failed": 0,
            "degraded": 0,
            "model_calls": 0,
            "rungs": {},
            "quarantined": False,
            "replayed": False,
        }
        _log.warning(
            "request shed by admission control",
            extra={"data": {"traj_id": traj_id, "shard": shard,
                            "policy": policy, "why": why}},
        )

    def _feed(self, shard: int) -> None:
        """Move buffered envelopes into the shard's OS-level task queue,
        up to the prefetch window (everything, when unbounded)."""
        prefetch: Optional[int] = None
        if self.config.max_queue_depth is not None:
            prefetch = min(self.config.queue_prefetch, self.config.max_queue_depth)
        buffer = self._buffers[shard]
        while buffer and (prefetch is None or self._in_queue[shard] < prefetch):
            envelope = buffer.popleft()
            self._task_queues[shard].put(envelope)
            self._in_queue[shard] += 1
            self._in_queue_ids.add(envelope["trajectory"].traj_id)

    def _note_depth(self) -> None:
        """Refresh the queued/inflight gauges and the peak-depth stat."""
        shards = range(self.config.workers)
        total_queued = sum(self._depth(shard) for shard in shards)
        deepest = max((self._depth(shard) for shard in shards), default=0)
        self.stats.peak_queue_depth = max(self.stats.peak_queue_depth, deepest)
        obs.gauge("repro.serve.queue_depth").set(total_queued)
        obs.gauge("repro.serve.inflight").set(
            float(sum(self._inflight.values()))
        )

    # -- brownout ------------------------------------------------------------

    def _queue_wait_p99(self) -> Optional[float]:
        try:
            summary = self.flight.stage_summary()
        except Exception:
            return None
        stage = summary.get("queue_wait")
        if not stage:
            return None
        return stage.get("p99")

    def _brownout_tick(self) -> None:
        """Feed the brownout controller one pressure sample (rate-limited
        by its own interval) and publish a level change to the workers."""
        if self.brownout is None:
            return
        depth = max(
            (self._depth(shard) for shard in range(self.config.workers)),
            default=0,
        )
        new_level = self.brownout.evaluate(depth, self._queue_wait_p99())
        if new_level is not None and self._control is not None:
            self._control.value = new_level

    def brownout_settle(self, timeout_s: float = 10.0) -> int:
        """Tick the controller on an idle pool until it steps back to
        level 0 (or the timeout passes); returns the final level. The
        overload loadtest calls this after draining so a clean run shows
        the full step-down/step-up cycle."""
        if self.brownout is None:
            return 0
        wait_until = time.monotonic() + timeout_s
        while self.brownout.level > 0 and time.monotonic() < wait_until:
            self._brownout_tick()
            time.sleep(max(0.01, self.brownout.config.interval_s / 2))
        return self.brownout.level

    @property
    def outstanding(self) -> int:
        return len(self._outstanding)

    def drain(self, timeout: Optional[float] = None) -> dict[str, dict]:
        """Wait until every submitted trajectory has a result (or timeout).

        Returns the accumulated ``traj_id -> result message`` map. While
        idle, checks worker liveness and revives dead shards; on overall
        timeout it logs the unaccounted ids and returns what arrived —
        ``stats.lost`` then says how many never came back.
        """
        deadline = time.monotonic() + (
            timeout if timeout is not None else self.config.drain_timeout_s
        )
        while self._outstanding:
            if self._pump(0.25):
                continue
            self._check_workers()
            self._brownout_tick()
            if not any(p.is_alive() for p in self._procs.values()):
                # Every shard is dead (revive cap hit or revival off) —
                # drain the queue's stragglers and give up early rather
                # than sleeping out the full timeout.
                if not self._pump(1.0):
                    _log.error(
                        "all workers dead with outstanding work",
                        extra={"data": {"outstanding": len(self._outstanding)}},
                    )
                    break
                continue
            if time.monotonic() > deadline:
                _log.error(
                    "drain timed out with unaccounted trajectories",
                    extra={"data": {
                        "outstanding": len(self._outstanding),
                        "ids": sorted(self._outstanding)[:10],
                    }},
                )
                break
        return self.results

    def process_all(
        self, trajectories, timeout: Optional[float] = None
    ) -> dict[str, dict]:
        """Submit a batch and drain it (the loadtest / CLI convenience)."""
        for trajectory in trajectories:
            self.submit(trajectory)
        return self.drain(timeout=timeout)

    # -- message handling --------------------------------------------------

    def _pump(self, timeout: float) -> bool:
        """Handle at most one worker message; True if one was handled."""
        try:
            if timeout > 0:
                message = self._result_queue.get(timeout=timeout)
            else:
                message = self._result_queue.get_nowait()
        except queue_mod.Empty:
            return False
        self._handle(message)
        return True

    def _handle(self, message: dict) -> None:
        kind = message.get("kind")
        if kind == "result":
            self._handle_result(message)
        elif kind == "dequeued":
            self._handle_dequeued(message)
        elif kind in ("metrics", "bye"):
            self.worker_snapshots[message["shard"]] = message["snapshot"]
            if kind == "bye":
                self._byes.add(message["shard"])
                self.worker_lru[message["shard"]] = message.get("lru", {})
        # "ready" needs no bookkeeping beyond existing process state.

    def _handle_dequeued(self, message: dict) -> None:
        """A worker pulled a task off its queue: move it from queued to
        in-flight and refill the shard's prefetch window."""
        traj_id = message["traj_id"]
        shard = message["shard"]
        if traj_id in self._in_queue_ids:
            self._in_queue_ids.discard(traj_id)
            self._in_queue[shard] = max(0, self._in_queue.get(shard, 0) - 1)
        if traj_id in self._outstanding and traj_id not in self._dequeued_ids:
            self._dequeued_ids.add(traj_id)
            self._inflight[shard] = self._inflight.get(shard, 0) + 1
        self._feed(shard)
        self._note_depth()
        self._brownout_tick()

    def _handle_result(self, message: dict) -> None:
        traj_id = message["traj_id"]
        if traj_id in self.results:
            # At-least-once delivery: a replayed task can re-send a result
            # the dead worker already delivered. Exactly-once is restored
            # here, by id.
            self.stats.duplicates += 1
            obs.count("repro.serve.duplicate_results_total")
            self._outstanding.pop(traj_id, None)
            return
        handle_epoch = time.time()
        self.results[traj_id] = message
        expired = bool(message.get("expired"))
        if expired:
            self.stats.expired += 1
        else:
            self.stats.completed += 1
            obs.count("repro.serve.results_total")
        pending = self._outstanding.pop(traj_id, None)
        shard = message["shard"]
        # Reconcile the queued/in-flight split. A result without a prior
        # "dequeued" notification (journal replay, or the worker died
        # between dequeuing and notifying) still settles the books here.
        if traj_id in self._in_queue_ids:
            self._in_queue_ids.discard(traj_id)
            self._in_queue[shard] = max(0, self._in_queue.get(shard, 0) - 1)
        if traj_id in self._dequeued_ids:
            self._dequeued_ids.discard(traj_id)
            self._inflight[shard] = max(0, self._inflight.get(shard, 0) - 1)
        latency_s = None
        if pending is not None and not expired:
            # Expired tasks are excluded from the latency histogram: the
            # accepted-request p50/p99 is the SLA signal, and a deadline
            # miss is already counted on its own metric.
            latency_s = time.perf_counter() - pending.submitted_pc
            obs.observe("repro.serve.latency_seconds", latency_s)
        self._feed(shard)
        self._note_depth()
        self._brownout_tick()
        self.worker_processed[shard] = self.worker_processed.get(shard, 0) + 1
        if message.get("replayed"):
            self.stats.journal_replayed += 1
        if message.get("error") and not expired:
            self.stats.errors += 1
        if message.get("quarantined"):
            self.stats.quarantined += 1
        self.stats.trips += len(message.get("trips", ()))
        self.stats.segments += message.get("segments", 0)
        self.stats.failed_segments += message.get("failed", 0)
        self.stats.degraded_segments += message.get("degraded", 0)
        self.stats.model_calls += message.get("model_calls", 0)
        for rung, count in message.get("rungs", {}).items():
            self.stats.rungs[rung] = self.stats.rungs.get(rung, 0) + count
        if pending is not None and latency_s is not None:
            self._attribute(message, pending, latency_s, handle_epoch)

    # -- tail-latency attribution -------------------------------------------

    def _attribute(
        self,
        message: dict,
        pending: _Pending,
        latency_s: float,
        handle_epoch: float,
    ) -> None:
        """Derive the request's stage breakdown, feed the flight recorder,
        and (tracing on) merge the shipped span tree into ``trace_roots``."""
        process_s = float(message.get("process_s") or 0.0)
        start_epoch = message.get("start_epoch")
        if start_epoch is None:
            # A worker that never reported its dequeue time: the best
            # split available is processing vs everything-else.
            queue_wait = 0.0
            transit = latency_s - process_s
        else:
            queue_wait = start_epoch - pending.submit_epoch
            transit = handle_epoch - start_epoch - process_s
        roots: list[Span] = []
        if message.get("spans"):
            offset = float(message.get("clock_offset") or 0.0) - self._clock_offset
            roots = [Span.from_dict(d).shift(offset) for d in message["spans"]]
            obs.count("repro.serve.traced_requests_total")
        record = FlightRecord(
            trace_id=message.get("trace_id") or pending.trace_id,
            traj_id=message["traj_id"],
            latency_s=latency_s,
            stages=stage_breakdown(process_s, queue_wait, transit, roots),
            shard=pending.shard,
            worker_id=message.get("worker_id"),
            replayed=bool(message.get("replayed")),
            error=message.get("error"),
            context={
                "strategy": self.strategy.name,
                "trips": len(message.get("trips", ())),
                "segments": message.get("segments", 0),
                "model_calls": message.get("model_calls", 0),
                "rungs": dict(message.get("rungs", {})),
            },
        )
        if roots:
            request_root = self._request_tree(
                record, pending, roots, process_s, start_epoch, handle_epoch
            )
            record.roots = [request_root]
            self.trace_roots.append(request_root)
            if len(self.trace_roots) > self.config.trace_max_roots:
                del self.trace_roots[
                    : len(self.trace_roots) - self.config.trace_max_roots
                ]
        self.flight.record(record)

    def _request_tree(
        self,
        record: FlightRecord,
        pending: _Pending,
        roots: list[Span],
        process_s: float,
        start_epoch: Optional[float],
        handle_epoch: float,
    ) -> Span:
        """Graft the worker's (rebased) span trees under one synthetic
        ``serve.request`` root spanning submit-to-result, with synthetic
        ``serve.queue_wait`` / ``serve.result_transit`` brackets. The
        whole tree lands on one lane per shard in the merged trace."""
        lane = pending.shard + 1
        self.trace_lanes.setdefault(lane, f"shard {pending.shard}")
        submit_pc = pending.submit_epoch - self._clock_offset
        handle_pc = handle_epoch - self._clock_offset
        request = Span(
            "serve.request",
            {
                "traj_id": record.traj_id,
                "shard": pending.shard,
                "worker_id": record.worker_id,
                "replayed": record.replayed,
            },
            trace_id=record.trace_id,
        )
        request.start_s = submit_pc
        request.end_s = max(submit_pc, handle_pc)
        if start_epoch is not None:
            start_pc = start_epoch - self._clock_offset
            wait = Span("serve.queue_wait", trace_id=record.trace_id)
            wait.start_s = submit_pc
            wait.end_s = max(submit_pc, start_pc)
            request.children.append(wait)
            request.children.extend(roots)
            transit = Span("serve.result_transit", trace_id=record.trace_id)
            transit.end_s = handle_pc
            transit.start_s = min(max(submit_pc, start_pc + process_s), handle_pc)
            request.children.append(transit)
        else:
            request.children.extend(roots)
        for span_obj in request.walk():
            span_obj.thread_id = lane
        return request

    # -- worker liveness ---------------------------------------------------

    def _check_workers(self) -> None:
        for shard, proc in list(self._procs.items()):
            if proc.is_alive() or shard in self._byes:
                continue
            proc.join(timeout=1.0)
            self.stats.worker_deaths += 1
            obs.count("repro.serve.worker_deaths_total")
            _log.warning(
                "worker died; respawning its shard",
                extra={"data": {
                    "shard": shard,
                    "exitcode": proc.exitcode,
                    "revive": self.config.revive_dead_workers,
                }},
            )
            revives = self._revives.get(shard, 0)
            if (
                self.config.revive_dead_workers
                and not self._stopping
                and revives < self.config.max_revives_per_shard
            ):
                # Same task queue (undrained work survives), recover=True
                # (the replacement replays the shard journal first).
                self._revives[shard] = revives + 1
                self._spawn(shard, recover=True)
            else:
                self._byes.add(shard)
                self._declare_lost(shard)

    def _declare_lost(self, shard: int) -> None:
        """Write off a retired shard's in-flight work.

        No worker will ever drain this shard's queue again, so its
        outstanding trajectories can't complete: drop them from the
        in-flight map (so ``queue_depth`` and ``drain()`` reflect
        reality instead of waiting out the timeout) and count them.
        A straggler result already in the pipe is still accepted by
        ``_handle_result`` — it just no longer has a pending entry.
        """
        lost = [
            traj_id
            for traj_id, pending in self._outstanding.items()
            if pending.shard == shard
        ]
        if not lost:
            return
        for traj_id in lost:
            del self._outstanding[traj_id]
            self._in_queue_ids.discard(traj_id)
            self._dequeued_ids.discard(traj_id)
        self._buffers[shard].clear()
        self._in_queue[shard] = 0
        self._inflight[shard] = 0
        self.stats.declared_lost += len(lost)
        obs.count("repro.serve.lost_total", len(lost))
        self._note_depth()
        _log.error(
            "shard retired with in-flight work; declaring it lost",
            extra={"data": {
                "shard": shard,
                "lost": len(lost),
                "ids": sorted(lost)[:10],
            }},
        )

    # -- shutdown ----------------------------------------------------------

    def stop(self, timeout: float = 20.0) -> None:
        """Sentinel every shard, collect goodbyes, reap the processes.

        Escalation ladder: poison pills and a graceful join first, then
        ``terminate()`` (SIGTERM), then ``kill()`` (SIGKILL) — Ctrl-C or
        a supervisor's SIGTERM must never leave orphan workers behind.
        """
        if not self._started or self._stopping:
            return
        self._stopping = True
        for task_queue in self._task_queues:
            task_queue.put(None)
        deadline = time.monotonic() + timeout
        while len(self._byes) < len(self._procs) and time.monotonic() < deadline:
            if self._pump(0.25):
                continue
            if not any(p.is_alive() for p in self._procs.values()):
                break
        for proc in self._procs.values():
            proc.join(timeout=5.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5.0)
            if proc.is_alive():
                # A worker wedged through SIGTERM (stalled in C code, or
                # chaos-stalled): SIGKILL is the no-orphans backstop.
                _log.error(
                    "worker ignored terminate; killing it",
                    extra={"data": {"pid": proc.pid}},
                )
                proc.kill()
                proc.join(timeout=5.0)
        while self._pump(0.0):
            pass
        for task_queue in self._task_queues:
            task_queue.close()
            task_queue.cancel_join_thread()
        self._result_queue.close()
        if self.metrics_server is not None:
            self.metrics_server.stop()
            self.metrics_server = None
        _log.info(
            "serving pool stopped",
            extra={"data": {
                "completed": self.stats.completed,
                "shed": self.stats.shed,
                "expired": self.stats.expired,
                "worker_deaths": self.stats.worker_deaths,
            }},
        )

    def close(self, timeout: float = 20.0) -> None:
        """Graceful-shutdown alias for :meth:`stop` (idempotent)."""
        self.stop(timeout=timeout)

    # -- fleet observability -----------------------------------------------

    def merged_snapshot(self) -> dict[str, dict]:
        """One fleet-wide metrics snapshot: the parent's ``repro.serve.*``
        metrics merged with the latest snapshot from every worker."""
        parent = get_registry().snapshot(prefix="repro.serve")
        return merge_snapshots([parent, *self.worker_snapshots.values()])

    def healthz(self) -> dict:
        """The aggregated health document behind ``/healthz``."""
        workers = []
        for shard in sorted(self._procs):
            proc = self._procs[shard]
            workers.append(
                {
                    "shard": shard,
                    "alive": proc.is_alive(),
                    "pid": proc.pid,
                    "processed": self.worker_processed.get(shard, 0),
                    "queue_depth": self._depth(shard),
                    "inflight": self._inflight.get(shard, 0),
                }
            )
        alive = all(w["alive"] for w in workers) if workers else False
        doc = {
            "status": "ok" if alive and self.stats.lost == 0 else "degraded",
            "strategy": self.strategy.name,
            "submitted": self.stats.submitted,
            "completed": self.stats.completed,
            "outstanding": len(self._outstanding),
            "duplicates": self.stats.duplicates,
            "worker_deaths": self.stats.worker_deaths,
            "journal_replayed": self.stats.journal_replayed,
            "declared_lost": self.stats.declared_lost,
            "shed": self.stats.shed,
            "expired": self.stats.expired,
            "peak_queue_depth": self.stats.peak_queue_depth,
            "admission": {
                "max_queue_depth": self.config.max_queue_depth,
                "policy": self.config.admission_policy,
                "request_deadline_s": self.config.request_deadline_s,
            },
            "workers": workers,
        }
        if self.brownout is not None:
            doc["brownout"] = self.brownout.to_dict()
        return doc
