"""Scale-out serving: a sharded multi-worker pool over the saved pyramid.

The paper's scalability story is that the pyramid model repository keeps
any single request's working set small. This package turns that into a
deployment shape: N worker processes, each owning one spatial partition
of the pyramid, behind a deterministic router.

* :mod:`repro.serve.strategies` — partition routing
  (hash-by-root-cell, spatial-range stripes, round-robin) behind
  :func:`~repro.serve.strategies.make_strategy`; seeded and
  ``PYTHONHASHSEED``-independent.
* :mod:`repro.serve.modelstore` — per-worker bounded model LRU over the
  read-only :class:`~repro.io.serialize.ModelStore`; a worker's memory
  is O(cache capacity), not O(pyramid).
* :mod:`repro.serve.worker` / :mod:`repro.serve.pool` — the worker
  protocol and the parent-side pool: spawn, route, dedupe,
  detect-death-and-respawn with per-shard journal replay.
* :mod:`repro.serve.aggregate` — fleet-wide ``/metrics`` + ``/healthz``
  from merged per-worker registries, plus ``/slow`` — the pool's
  slow-request flight recorder (:mod:`repro.obs.flight`).
* :mod:`repro.serve.loadtest` — ``kamel loadtest``: synthetic traffic,
  p50/p99 latency, sustained throughput, bit-for-bit verification
  against the single-process baseline, schema-v2 bench snapshots, and
  (``--trace-out``) the merged multi-worker Chrome trace with
  per-request stage attribution.

Every request is traced end to end when ``ServeConfig.trace`` is on:
the pool stamps a trace id at submit, workers record span trees inside
``trace_scope(trace_id)`` and ship them back clock-aligned, and the
five-stage latency breakdown (queue wait, model load, inference,
detokenize, result transit) feeds ``repro.serve.stage.*`` histograms
and ``kamel tail``. See docs/serving.md and docs/observability.md.

The tier is overload-protected (:mod:`repro.serve.overload`): bounded
per-shard queues with ``block`` / ``shed`` / ``shed-oldest`` admission
(refusals surface as typed :class:`~repro.errors.OverloadError`
results), cross-process request deadlines (expired tasks dropped at
dequeue, thin budgets finish on cheaper ladder rungs), and a brownout
controller that caps every shard's degradation ladder under sustained
pressure and recovers with hysteresis.
"""

from repro.serve.loadtest import LoadtestConfig, LoadtestReport, run_loadtest
from repro.serve.modelstore import LazyModel, ModelLRU, load_kamel_lazy
from repro.serve.overload import (
    ADMISSION_POLICIES,
    BrownoutConfig,
    BrownoutController,
)
from repro.serve.pool import PoolStats, ServeConfig, ServingPool
from repro.serve.strategies import (
    STRATEGIES,
    HashCellStrategy,
    PartitionStrategy,
    RoundRobinStrategy,
    SpatialRangeStrategy,
    make_strategy,
    stable_shard,
)
from repro.serve.worker import WorkerSpec, worker_main

__all__ = [
    "ADMISSION_POLICIES",
    "BrownoutConfig",
    "BrownoutController",
    "HashCellStrategy",
    "LazyModel",
    "LoadtestConfig",
    "LoadtestReport",
    "ModelLRU",
    "PartitionStrategy",
    "PoolStats",
    "RoundRobinStrategy",
    "STRATEGIES",
    "ServeConfig",
    "ServingPool",
    "SpatialRangeStrategy",
    "WorkerSpec",
    "load_kamel_lazy",
    "make_strategy",
    "run_loadtest",
    "stable_shard",
    "worker_main",
]
