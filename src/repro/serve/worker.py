"""The worker-process side of the serving pool.

Each worker owns one spatial shard: it restores the saved system with
lazy model loading (:func:`~repro.serve.modelstore.load_kamel_lazy`),
wraps it in a :class:`~repro.core.streaming.StreamingImputationService`
(cleaning, quarantine, degradation ladder — all the single-process
machinery, unchanged), and consumes trajectories from its task queue
until it receives the ``None`` sentinel.

Durability is the worker's job, not the service's: the worker journals
``begin`` before touching a task and ``done`` only after the result is
*on the result queue*. A crash anywhere in between leaves the entry
pending, and the replacement worker the pool spawns replays it before
taking new traffic — so results are delivered at-least-once and the pool
deduplicates by trajectory id. Imputation is deterministic, so a replayed
result is byte-identical to the one the dead worker would have sent.

Everything the worker measures lands in its own process-local
:class:`~repro.obs.metrics.MetricsRegistry`; snapshots ride the result
queue (periodically and in the final ``bye`` message) for the pool to
merge into the fleet-wide ``/metrics`` view.

With tracing on (``WorkerSpec.trace``), the worker also ships each
request's span trees: tasks arrive as envelopes carrying the pool's
``trace_id`` and submit timestamp, the worker processes inside
``trace_scope(trace_id)``, and the result message adds the serialized
trees (bounded by ``span_batch``; overflow counts
``repro.serve.spans_dropped_total``) plus this process's
:func:`~repro.obs.tracing.clock_offset` so the pool can rebase them onto
its own timeline. The worker's ``start_epoch`` (wall clock at dequeue)
always rides along — it is what splits queue wait from processing from
result transit, tracing or not.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, replace
from typing import Optional

from repro.core.streaming import StreamingConfig, StreamingImputationService
from repro.geo import Trajectory
from repro.obs import instrument as obs
from repro.obs.logging import get_logger
from repro.obs.metrics import get_registry
from repro.obs.tracing import (
    clear_spans,
    clock_offset,
    enable_tracing,
    finished_spans,
    get_tracer,
    trace_scope,
    tracing_enabled,
)
from repro.resilience.chaos import ChaosConfig, ChaosMonkey, InjectedCrash
from repro.resilience.deadline import Deadline
from repro.resilience.journal import StreamJournal, trajectory_to_payload
from repro.resilience.ladder import (
    DegradationLadder,
    RUNG_COUNTING,
    RUNG_REDUCED_BEAM,
)
from repro.serve.modelstore import DEFAULT_LRU_CAPACITY, load_kamel_lazy
from repro.serve.overload import rung_cap_for

__all__ = ["CRASH_EXIT_CODE", "WorkerSpec", "worker_main"]

_log = get_logger("serve.worker")

CRASH_EXIT_CODE = 13
"""Exit status of an injected worker crash (distinguishable from bugs)."""


@dataclass(frozen=True)
class WorkerSpec:
    """Everything a spawned worker needs (must stay picklable)."""

    worker_id: int
    """Incarnation-unique id (a respawn on the same shard gets a new one)."""
    shard: int
    """The partition this worker owns; stable across respawns."""
    model_dir: str
    """Directory written by :func:`repro.io.save_kamel`."""
    lru_capacity: int = DEFAULT_LRU_CAPACITY
    journal_dir: Optional[str] = None
    """Per-shard write-ahead journals live here; None disables durability."""
    recover: bool = False
    """Replay the shard journal's pending entries before new traffic."""
    crash_after: Optional[int] = None
    """Chaos: die (``os._exit``) on the Nth task taken from the queue."""
    chaos_seed: int = 0
    metrics_every: int = 25
    """Ship a registry snapshot to the pool every this many tasks."""
    trip_gap_s: float = 600.0
    max_speed_mps: float = 60.0
    trace: bool = False
    """Collect span trees and ship them back with each result."""
    trace_max_roots: int = 1000
    """Bound on the worker tracer's finished-root buffer."""
    span_batch: int = 64
    """Root spans shipped per result; overflow is dropped (and counted)."""
    late_degrade: bool = True
    """With a request deadline present, cap the ladder for requests whose
    remaining budget is already thin (<50% left: reduced beam at most,
    <25%: counting at most) — finish late requests cheaper instead of
    missing them entirely."""
    worker_chaos: Optional[ChaosConfig] = None
    """Pool-level chaos (IPC delays, stalls) injected into this worker;
    ``crash_after`` (when set) is merged on top of it."""

    def journal_path(self) -> Optional[str]:
        if self.journal_dir is None:
            return None
        return os.path.join(self.journal_dir, f"worker-{self.shard}.jsonl")

    def quarantine_path(self) -> Optional[str]:
        if self.journal_dir is None:
            return None
        return os.path.join(
            self.journal_dir, f"worker-{self.shard}.quarantine.jsonl"
        )


def _snapshot_message(spec: WorkerSpec, processed: int) -> dict:
    return {
        "kind": "metrics",
        "shard": spec.shard,
        "worker_id": spec.worker_id,
        "processed": processed,
        "snapshot": get_registry().snapshot(),
    }


def _process_one(
    spec: WorkerSpec,
    service: StreamingImputationService,
    journal: Optional[StreamJournal],
    result_queue,
    trajectory: Trajectory,
    replayed: bool,
    trace_id: Optional[str] = None,
    deadline: Optional[Deadline] = None,
    max_rung: Optional[str] = None,
    monkey: Optional[ChaosMonkey] = None,
) -> None:
    """Impute one trajectory and deliver its result (at-least-once).

    The ``done`` journal record is written only after the result message
    is enqueued: dying between the two re-delivers the result on replay,
    which the pool's dedupe absorbs — the safe side of the fence.
    """
    quarantined_before = service.stats.quarantined
    start_epoch = time.time()
    started = time.perf_counter()
    tracing = tracing_enabled()
    if tracing:
        # One request, one batch of roots: anything finished before this
        # task belongs to a result already shipped (or to startup).
        clear_spans()
    message = {
        "kind": "result",
        "shard": spec.shard,
        "worker_id": spec.worker_id,
        "traj_id": trajectory.traj_id,
        "replayed": replayed,
        "error": None,
        "start_epoch": start_epoch,
    }
    try:
        with trace_scope(trace_id) as active_id:
            message["trace_id"] = active_id
            results = service.process(
                trajectory, deadline=deadline, max_rung=max_rung
            )
        rungs: dict[str, int] = {}
        for result in results:
            for rung, count in result.rung_counts.items():
                rungs[rung] = rungs.get(rung, 0) + count
        message.update(
            {
                "trips": [trajectory_to_payload(r.trajectory) for r in results],
                "segments": sum(r.num_segments for r in results),
                "failed": sum(r.num_failed for r in results),
                "degraded": sum(r.num_degraded for r in results),
                "model_calls": sum(r.total_model_calls for r in results),
                "rungs": rungs,
                "quarantined": service.stats.quarantined > quarantined_before,
            }
        )
    except Exception as exc:  # noqa: BLE001 - one bad input must not kill the shard
        obs.count("repro.serve.worker_errors_total")
        _log.error(
            "worker processing error",
            extra={"data": {"trajectory": trajectory.traj_id, "error": repr(exc)}},
        )
        message.update(
            {
                "trips": [],
                "segments": 0,
                "failed": 0,
                "degraded": 0,
                "model_calls": 0,
                "rungs": {},
                "quarantined": False,
                "error": repr(exc),
            }
        )
    message["process_s"] = time.perf_counter() - started
    if tracing:
        roots = finished_spans()
        if len(roots) > spec.span_batch:
            obs.count(
                "repro.serve.spans_dropped_total", len(roots) - spec.span_batch
            )
            roots = roots[: spec.span_batch]
        message["spans"] = [root.to_dict() for root in roots]
        message["clock_offset"] = clock_offset()
        clear_spans()
    if monkey is not None:
        monkey.on_ipc("ipc.result")  # chaos: delayed result pipe
    result_queue.put(message)
    obs.count("repro.serve.worker.trajectories_total")
    if journal is not None:
        journal.done(trajectory.traj_id)


def _unpack_task(task) -> tuple[Trajectory, dict]:
    """A task is either an envelope dict or a bare trajectory (journal
    replay, older producers). Returns ``(trajectory, envelope)`` — the
    envelope is ``{}`` for bare trajectories."""
    if isinstance(task, dict):
        return task["trajectory"], task
    return task, {}


def _rebased_deadline(envelope: dict) -> Optional[Deadline]:
    """The request deadline on *this* process's clock, if the envelope
    carries one.

    The pool stamps ``deadline_epoch`` (absolute wall clock); epoch time
    is shared across processes, so converting through this process's
    :func:`~repro.obs.tracing.clock_offset` yields the same instant on
    the local ``perf_counter`` timeline — the monotonic clock
    :class:`Deadline` budgets are measured on.
    """
    deadline_epoch = envelope.get("deadline_epoch")
    if deadline_epoch is None:
        return None
    budget_s = float(envelope.get("deadline_budget_s") or 0.0)
    expires_pc = float(deadline_epoch) - clock_offset()
    return Deadline(expires_pc, budget_s, clock=time.perf_counter)


def _expired_message(spec: WorkerSpec, trajectory: Trajectory, trace_id) -> dict:
    """The result sent for a task whose deadline passed while queued:
    fully accounted (the pool counts it ``expired``), no work done."""
    return {
        "kind": "result",
        "shard": spec.shard,
        "worker_id": spec.worker_id,
        "traj_id": trajectory.traj_id,
        "trace_id": trace_id,
        "replayed": False,
        "expired": True,
        "error": "DeadlineExceeded: request expired in queue",
        "error_type": "DeadlineExceeded",
        "start_epoch": time.time(),
        "process_s": 0.0,
        "trips": [],
        "segments": 0,
        "failed": 0,
        "degraded": 0,
        "model_calls": 0,
        "rungs": {},
        "quarantined": False,
    }


def _rung_cap(spec: WorkerSpec, control, deadline: Optional[Deadline]) -> Optional[str]:
    """The ladder cap for one task: pool brownout level (shared
    ``control`` Value) tightened by local deadline pressure."""
    cap: Optional[str] = None
    if control is not None:
        cap = rung_cap_for(int(control.value))
    if (
        spec.late_degrade
        and deadline is not None
        and not deadline.is_unlimited
        and deadline.budget_s > 0
    ):
        frac = max(0.0, deadline.remaining()) / deadline.budget_s
        if frac < 0.25:
            cap = DegradationLadder.tighter_cap(cap, RUNG_COUNTING)
        elif frac < 0.5:
            cap = DegradationLadder.tighter_cap(cap, RUNG_REDUCED_BEAM)
    return cap


def worker_main(spec: WorkerSpec, task_queue, result_queue, control=None) -> None:
    """Entry point of one worker process (target of ``Process``).

    ``control`` (optional) is a shared ``multiprocessing.Value('i')``
    holding the pool's current brownout level; the worker reads it per
    task and caps the degradation ladder accordingly."""
    if spec.trace:
        get_tracer().max_roots = spec.trace_max_roots
        enable_tracing()
    system, cache = load_kamel_lazy(spec.model_dir, lru_capacity=spec.lru_capacity)
    # The worker journals at loop level (so delivery is part of the
    # transaction); the inner service runs journal-less.
    service = StreamingImputationService(
        system,
        StreamingConfig(
            max_speed_mps=spec.max_speed_mps,
            trip_gap_s=spec.trip_gap_s,
            quarantine_path=spec.quarantine_path(),
        ),
    )
    journal: Optional[StreamJournal] = None
    path = spec.journal_path()
    if path is not None:
        journal = StreamJournal(path)
    monkey: Optional[ChaosMonkey] = None
    chaos_cfg = spec.worker_chaos
    if spec.crash_after is not None:
        base = chaos_cfg or ChaosConfig(seed=spec.chaos_seed)
        chaos_cfg = replace(base, crash_after=spec.crash_after)
    if chaos_cfg is not None:
        monkey = ChaosMonkey(chaos_cfg)

    result_queue.put(
        {"kind": "ready", "shard": spec.shard, "worker_id": spec.worker_id}
    )
    processed = 0

    if spec.recover and journal is not None:
        for trajectory in journal.pending():
            obs.count("repro.serve.journal_replayed_total")
            _process_one(spec, service, journal, result_queue, trajectory, True)
            processed += 1

    while True:
        task = task_queue.get()
        if task is None:
            break
        trajectory, envelope = _unpack_task(task)
        trace_id = envelope.get("trace_id")
        if monkey is not None:
            # Chaos: a stalled worker wedges *here* — after the dequeue,
            # before any durability work — so its shard's queue backs up
            # while the process stays alive (the overload scenario).
            monkey.on_dequeue()
        # Tell the pool the task left the queue: this is what splits the
        # serve_queue_depth gauge (still queued) from serve_inflight
        # (dequeued, no result yet) and lets admission refill the shard.
        result_queue.put(
            {
                "kind": "dequeued",
                "shard": spec.shard,
                "worker_id": spec.worker_id,
                "traj_id": trajectory.traj_id,
            }
        )
        if journal is not None:
            journal.begin(trajectory)
        if monkey is not None:
            try:
                # After the journal write — the injected death leaves the
                # task pending, exactly like a real crash mid-processing.
                monkey.on_process()
            except InjectedCrash:
                # An abrupt process death, not an exception unwind: no
                # goodbye message, no cleanup, no atexit — the pool must
                # notice the dead process via is_alive() and respawn.
                os._exit(CRASH_EXIT_CODE)
        deadline = _rebased_deadline(envelope)
        if deadline is not None and deadline.expired:
            # Dead on arrival: its deadline passed while it sat in the
            # queue. Report it expired (accounted, journaled done) and
            # spend the remaining capacity on requests that can still
            # make their deadline.
            obs.count("repro.serve.expired_in_queue_total")
            result_queue.put(_expired_message(spec, trajectory, trace_id))
            if journal is not None:
                journal.done(trajectory.traj_id)
            processed += 1
            continue
        _process_one(
            spec, service, journal, result_queue, trajectory, False, trace_id,
            deadline=deadline,
            max_rung=_rung_cap(spec, control, deadline),
            monkey=monkey,
        )
        processed += 1
        if spec.metrics_every and processed % spec.metrics_every == 0:
            result_queue.put(_snapshot_message(spec, processed))

    result_queue.put(
        {
            "kind": "bye",
            "shard": spec.shard,
            "worker_id": spec.worker_id,
            "processed": processed,
            "snapshot": get_registry().snapshot(),
            "lru": {
                "capacity": cache.capacity,
                "resident": len(cache),
                "hits": cache.hits,
                "misses": cache.misses,
                "evictions": cache.evictions,
            },
        }
    )
