"""Fleet-wide telemetry aggregation for the serving pool.

One worker, one registry — that is the process-local design of
``repro.obs``. The pool stitches the fleet back together here:
:func:`render_pool_metrics` merges the parent's ``repro.serve.*`` metrics
with every worker's latest snapshot into a single Prometheus exposition,
keeping ``repro.serve.worker.trajectories_total`` out of the merged
(unlabeled) families and re-emitting it as per-worker ``{worker="N"}``
samples instead — so one scrape shows both the fleet totals and the
per-shard load split.

:class:`PoolMetricsServer` hangs that exposition plus the pool's
aggregated health document on ``/metrics`` and ``/healthz``, same
stdlib-only shape as :class:`~repro.obs.server.ObservabilityServer` —
plus ``/slow``, the pool's :class:`~repro.obs.flight.FlightRecorder`
payload: per-stage p50/p99 attribution with exemplar trace ids and the
slowest-N requests' full span trees (see ``kamel tail``).
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional
from urllib.parse import urlparse

from repro.obs.export import (
    CONTENT_TYPE_PROMETHEUS,
    prometheus_name,
    render_prometheus_snapshot,
)
from repro.obs.instrument import catalog_description
from repro.obs.logging import get_logger

__all__ = ["PoolMetricsServer", "render_pool_metrics"]

_log = get_logger("serve.aggregate")

_PER_WORKER_COUNTER = "repro.serve.worker.trajectories_total"


def render_pool_metrics(pool) -> str:
    """The pool's merged /metrics body (Prometheus text exposition).

    ``pool`` is a :class:`~repro.serve.pool.ServingPool`; duck-typed so
    tests can pass a stub with ``merged_snapshot`` and
    ``worker_processed``.
    """
    merged = pool.merged_snapshot()
    body = render_prometheus_snapshot(merged, exclude=(_PER_WORKER_COUNTER,))
    lines = [body.rstrip("\n")] if body else []
    per_worker = getattr(pool, "worker_processed", {})
    if per_worker:
        name = prometheus_name(_PER_WORKER_COUNTER)
        description = catalog_description(_PER_WORKER_COUNTER)
        if description:
            lines.append(f"# HELP {name} {description}")
        lines.append(f"# TYPE {name} counter")
        for shard in sorted(per_worker):
            lines.append(f'{name}{{worker="{shard}"}} {per_worker[shard]}')
    if not lines:
        return ""
    return "\n".join(lines) + "\n"


class _Handler(BaseHTTPRequestHandler):
    server: "_PoolHTTPServer"
    protocol_version = "HTTP/1.1"

    def log_message(self, format: str, *args) -> None:  # noqa: A002 — stdlib signature
        _log.debug(
            "http request",
            extra={"data": {"client": self.address_string(), "line": format % args}},
        )

    def _respond(self, status: int, body: str, content_type: str) -> None:
        payload = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def do_GET(self) -> None:  # noqa: N802 — stdlib dispatch name
        route = urlparse(self.path).path.rstrip("/") or "/"
        if route == "/metrics":
            self._respond(
                200, render_pool_metrics(self.server.pool), CONTENT_TYPE_PROMETHEUS
            )
        elif route == "/healthz":
            body = json.dumps(self.server.pool.healthz(), default=float)
            self._respond(200, body, "application/json; charset=utf-8")
        elif route == "/slow":
            recorder = getattr(self.server.pool, "flight", None)
            payload = recorder.to_dict() if recorder is not None else {}
            body = json.dumps(payload, default=float)
            self._respond(200, body, "application/json; charset=utf-8")
        else:
            self._respond(
                404, "not found: try /metrics, /healthz, /slow\n", "text/plain"
            )


class _PoolHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    pool: object


class PoolMetricsServer:
    """Background /metrics + /healthz endpoint over a serving pool.

    Reads are approximate by design: the handler thread renders whatever
    snapshots and counters the pool has at that instant, the same
    monitoring contract as a Prometheus scrape of any live process.
    """

    def __init__(self, pool, port: int = 0, host: str = "127.0.0.1") -> None:
        self.pool = pool
        self._requested_port = port
        self.host = host
        self._httpd: Optional[_PoolHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    def start(self) -> "PoolMetricsServer":
        if self._httpd is not None:
            return self
        httpd = _PoolHTTPServer((self.host, self._requested_port), _Handler)
        httpd.pool = self.pool
        self._httpd = httpd
        self._thread = threading.Thread(
            target=httpd.serve_forever,
            name=f"serve-metrics:{self.port}",
            daemon=True,
        )
        self._thread.start()
        _log.info("pool metrics endpoint up", extra={"data": {"url": self.url}})
        return self

    def stop(self) -> None:
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._httpd = None
        self._thread = None

    def __enter__(self) -> "PoolMetricsServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    @property
    def running(self) -> bool:
        return self._httpd is not None

    @property
    def port(self) -> int:
        if self._httpd is None:
            return self._requested_port
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"
