"""Partition routing for the sharded serving tier.

A :class:`PartitionStrategy` maps an incoming trajectory to one of N
worker shards. The pyramid model repository is spatial, so a spatial
routing key keeps each worker's working set small: a worker that only
ever sees trajectories starting in its slice of the city only ever loads
the models covering that slice (the point of the per-worker model LRU).

Determinism is a hard requirement, not a nicety: the router runs in the
parent, journal replay runs in a *respawned* worker, and a loadtest
compares against a single-process baseline — all three must agree on
which shard owns a trajectory, across processes, runs, and
``PYTHONHASHSEED`` values. Routing therefore hashes explicit,
byte-serialized cell ids with BLAKE2b (:func:`stable_shard`) and never
touches Python's builtin ``hash()``, whose string hashing is salted per
process.

Strategies live behind :func:`make_strategy` so the pool, the CLI, and
the tests all construct them by name from one registry.
"""

from __future__ import annotations

import abc
import hashlib
import struct
from typing import Callable, Optional

from repro.errors import ConfigError
from repro.geo import BoundingBox, Trajectory
from repro.grid.base import Cell, Grid

__all__ = [
    "PartitionStrategy",
    "HashCellStrategy",
    "SpatialRangeStrategy",
    "RoundRobinStrategy",
    "STRATEGIES",
    "make_strategy",
    "stable_shard",
]


def stable_shard(cell: Cell, num_partitions: int, seed: int = 0) -> int:
    """Deterministic shard for a grid cell: BLAKE2b over its packed bytes.

    The cell's two signed integer coordinates are serialized with
    ``struct.pack`` (fixed little-endian layout) and hashed together with
    the seed — the result depends only on those bytes, so every process,
    interpreter restart, and ``PYTHONHASHSEED`` produces the same shard.
    """
    data = struct.pack("<q2q", seed, int(cell[0]), int(cell[1]))
    digest = hashlib.blake2b(data, digest_size=8).digest()
    return int.from_bytes(digest, "big") % num_partitions


class PartitionStrategy(abc.ABC):
    """Maps a trajectory to a shard index in ``[0, num_partitions)``."""

    name = "abstract"

    def __init__(self, num_partitions: int) -> None:
        if num_partitions < 1:
            raise ConfigError(
                f"num_partitions must be >= 1, got {num_partitions!r}"
            )
        self.num_partitions = num_partitions

    @abc.abstractmethod
    def shard_for(self, trajectory: Trajectory) -> int:
        """The shard that owns this trajectory."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(num_partitions={self.num_partitions})"


class HashCellStrategy(PartitionStrategy):
    """Hash of the trajectory's root grid cell (the default).

    The routing key is the grid cell of the trajectory's *first* point —
    the "root cell" anchoring the trip spatially. Trips starting in the
    same cell always land on the same worker (model locality), and the
    BLAKE2b hash spreads cells evenly across shards regardless of city
    geometry.
    """

    name = "hash"

    def __init__(self, num_partitions: int, grid: Grid, seed: int = 0) -> None:
        super().__init__(num_partitions)
        self.grid = grid
        self.seed = seed

    def shard_for(self, trajectory: Trajectory) -> int:
        if len(trajectory) == 0:
            return 0
        cell = self.grid.cell_of(trajectory.points[0])
        return stable_shard(cell, self.num_partitions, self.seed)


class SpatialRangeStrategy(PartitionStrategy):
    """Equal-width vertical stripes over the service region.

    Shard ``k`` owns the k-th x-stripe of the region's bounding box; a
    trajectory routes by its first point. Contiguous ownership makes each
    worker's model set a compact sub-rectangle of the pyramid — the best
    LRU locality of the three strategies — at the cost of load skew when
    traffic concentrates in a few stripes.
    """

    name = "range"

    def __init__(self, num_partitions: int, region: BoundingBox) -> None:
        super().__init__(num_partitions)
        self.region = region
        width = region.max_x - region.min_x
        self._stripe = width / num_partitions if width > 0 else 1.0

    def shard_for(self, trajectory: Trajectory) -> int:
        if len(trajectory) == 0:
            return 0
        x = trajectory.points[0].x
        index = int((x - self.region.min_x) / self._stripe)
        return max(0, min(self.num_partitions - 1, index))


class RoundRobinStrategy(PartitionStrategy):
    """Cycle through shards in submission order (no spatial locality).

    The load-balancing baseline: perfectly even work distribution, worst
    model-cache behavior (every worker eventually loads everything). Also
    the only strategy usable without routing context, e.g. a saved system
    with partitioning disabled ("No Part." variant).
    """

    name = "round_robin"

    def __init__(self, num_partitions: int) -> None:
        super().__init__(num_partitions)
        self._next = 0

    def shard_for(self, trajectory: Trajectory) -> int:
        shard = self._next
        self._next = (self._next + 1) % self.num_partitions
        return shard


StrategyFactory = Callable[..., PartitionStrategy]

STRATEGIES: dict[str, StrategyFactory] = {
    HashCellStrategy.name: HashCellStrategy,
    SpatialRangeStrategy.name: SpatialRangeStrategy,
    RoundRobinStrategy.name: RoundRobinStrategy,
}
"""Strategy name -> class, the registry behind :func:`make_strategy`."""


def make_strategy(
    name: str,
    num_partitions: int,
    grid: Optional[Grid] = None,
    region: Optional[BoundingBox] = None,
    seed: int = 0,
) -> PartitionStrategy:
    """Build a routing strategy by name, validating its context needs.

    ``hash`` needs a ``grid``; ``range`` needs a ``region``;
    ``round_robin`` needs neither. Unknown names raise
    :class:`~repro.errors.ConfigError` listing the registry.
    """
    if name not in STRATEGIES:
        known = ", ".join(sorted(STRATEGIES))
        raise ConfigError(f"unknown partition strategy {name!r} (known: {known})")
    if name == HashCellStrategy.name:
        if grid is None:
            raise ConfigError("the 'hash' strategy needs a grid for cell lookup")
        return HashCellStrategy(num_partitions, grid, seed)
    if name == SpatialRangeStrategy.name:
        if region is None:
            raise ConfigError("the 'range' strategy needs a service region bbox")
        return SpatialRangeStrategy(num_partitions, region)
    return RoundRobinStrategy(num_partitions)
