"""Overload protection for the sharded serving tier.

Peak throughput does not decide availability — overload behavior does.
This module holds the pool-side pieces that turn "scales across
processes" into "survives traffic":

* **admission policies** — what :meth:`repro.serve.pool.ServingPool.submit`
  does when a shard's bounded queue is full: ``block`` (wait, shedding
  only past a timeout), ``shed`` (refuse the newest request), or
  ``shed-oldest`` (evict the oldest still-queued request in favor of the
  newcomer).  Either way the refused trajectory surfaces as a typed
  :class:`repro.errors.OverloadError` result — accounted, never lost.
* **brownout control** — :class:`BrownoutController`, a hysteresis
  state machine watching queue depth and the queue-wait p99.  Under
  sustained pressure it steps every shard down the degradation ladder
  (full beam → reduced beam → counting); when pressure clears it steps
  back up.  Serving *worse* answers beats serving *no* answers, and the
  ladder already knows how to be worse gracefully.

The controller is deliberately process-local and clock-injectable: the
pool evaluates it inline (no extra thread), workers learn the current
level through a shared ``multiprocessing.Value`` and translate it to a
ladder cap via :func:`rung_cap_for`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import monotonic
from typing import Callable, Optional

from repro.obs import instrument as obs
from repro.obs.logging import get_logger
from repro.resilience.ladder import RUNG_COUNTING, RUNG_REDUCED_BEAM

__all__ = [
    "ADMISSION_BLOCK",
    "ADMISSION_SHED",
    "ADMISSION_SHED_OLDEST",
    "ADMISSION_POLICIES",
    "LEVEL_RUNGS",
    "rung_cap_for",
    "BrownoutConfig",
    "BrownoutController",
]

_log = get_logger("serve.overload")

ADMISSION_BLOCK = "block"
ADMISSION_SHED = "shed"
ADMISSION_SHED_OLDEST = "shed-oldest"
ADMISSION_POLICIES = (ADMISSION_BLOCK, ADMISSION_SHED, ADMISSION_SHED_OLDEST)

LEVEL_RUNGS: tuple[Optional[str], ...] = (None, RUNG_REDUCED_BEAM, RUNG_COUNTING)
"""Brownout level -> ladder cap: 0 uncapped, 1 reduced beam, 2 counting."""


def rung_cap_for(level: int) -> Optional[str]:
    """The ladder cap a brownout ``level`` imposes (clamped to the map)."""
    if level <= 0:
        return None
    return LEVEL_RUNGS[min(level, len(LEVEL_RUNGS) - 1)]


@dataclass(frozen=True)
class BrownoutConfig:
    """When and how fast the pool steps shards down the ladder."""

    high_depth: int = 8
    """Step *down* when the deepest shard queue reaches this."""
    low_depth: int = 1
    """Step *up* only when every shard queue is at or below this."""
    high_queue_wait_s: Optional[float] = None
    """Also step down when the queue-wait stage p99 exceeds this (from
    the ``repro.serve.stage.queue_wait_seconds`` histogram); None
    disables the latency trigger and depth alone decides."""
    step_down_after: int = 2
    """Consecutive over-threshold evaluations before stepping down."""
    step_up_after: int = 4
    """Consecutive under-threshold evaluations before stepping up —
    deliberately slower than the way down (classic hysteresis: flapping
    between levels is worse than briefly staying degraded)."""
    interval_s: float = 0.25
    """Minimum seconds between evaluations (the pool ticks opportunistically)."""
    max_level: int = 2
    """Deepest level the controller may reach (2 = counting cap)."""

    def __post_init__(self) -> None:
        if self.high_depth < 1:
            raise ValueError(f"high_depth must be >= 1, got {self.high_depth!r}")
        if not 0 <= self.low_depth < self.high_depth:
            raise ValueError(
                "low_depth must satisfy 0 <= low_depth < high_depth, got "
                f"{self.low_depth!r} vs {self.high_depth!r}"
            )
        if self.step_down_after < 1 or self.step_up_after < 1:
            raise ValueError("step_down_after and step_up_after must be >= 1")
        if not 1 <= self.max_level <= len(LEVEL_RUNGS) - 1:
            raise ValueError(f"max_level must be 1..{len(LEVEL_RUNGS) - 1}")
        if self.interval_s < 0:
            raise ValueError(f"interval_s must be >= 0, got {self.interval_s!r}")


@dataclass
class BrownoutTransition:
    """One recorded level change (for /healthz and the loadtest report)."""

    at_s: float
    from_level: int
    to_level: int
    reason: str

    def to_dict(self) -> dict:
        return {
            "at_s": round(self.at_s, 3),
            "from": self.from_level,
            "to": self.to_level,
            "reason": self.reason,
        }


@dataclass
class BrownoutController:
    """Hysteresis state machine: pressure signals in, ladder level out.

    ``evaluate(depth, queue_wait_p99)`` is called opportunistically by
    the pool; it rate-limits itself to ``config.interval_s`` and returns
    the new level when a step happened (``None`` otherwise).  The level
    only moves one step per evaluation, in either direction.
    """

    config: BrownoutConfig = field(default_factory=BrownoutConfig)
    clock: Callable[[], float] = monotonic

    def __post_init__(self) -> None:
        self.level = 0
        self.transitions: list[BrownoutTransition] = []
        self._over = 0
        self._under = 0
        self._last_eval: Optional[float] = None
        self._started = self.clock()

    # -- signals -----------------------------------------------------------

    def _pressed(self, depth: int, queue_wait_p99: Optional[float]) -> bool:
        cfg = self.config
        if depth >= cfg.high_depth:
            return True
        return (
            cfg.high_queue_wait_s is not None
            and queue_wait_p99 is not None
            and queue_wait_p99 >= cfg.high_queue_wait_s
        )

    def evaluate(
        self, depth: int, queue_wait_p99: Optional[float] = None
    ) -> Optional[int]:
        """Feed one pressure sample; returns the new level on a step."""
        now = self.clock()
        if self._last_eval is not None and now - self._last_eval < self.config.interval_s:
            return None
        self._last_eval = now
        if self._pressed(depth, queue_wait_p99):
            self._over += 1
            self._under = 0
            if self._over >= self.config.step_down_after and self.level < self.config.max_level:
                return self._step(self.level + 1, now, "pressure")
        elif depth <= self.config.low_depth:
            self._under += 1
            self._over = 0
            if self._under >= self.config.step_up_after and self.level > 0:
                return self._step(self.level - 1, now, "recovered")
        else:
            # The dead band between low and high: hold the level, reset
            # both streaks so a step needs *consecutive* clear signals.
            self._over = 0
            self._under = 0
        return None

    def _step(self, to_level: int, now: float, reason: str) -> int:
        transition = BrownoutTransition(
            at_s=now - self._started,
            from_level=self.level,
            to_level=to_level,
            reason=reason,
        )
        self.transitions.append(transition)
        self.level = to_level
        self._over = 0
        self._under = 0
        obs.gauge("repro.serve.brownout_level").set(float(to_level))
        obs.count("repro.serve.brownout_steps_total")
        log = _log.warning if to_level > transition.from_level else _log.info
        log(
            "brownout level changed",
            extra={"data": transition.to_dict()},
        )
        return to_level

    # -- reporting ---------------------------------------------------------

    @property
    def cap(self) -> Optional[str]:
        """The ladder cap the current level imposes."""
        return rung_cap_for(self.level)

    def completed_cycle(self) -> bool:
        """Whether the controller stepped down and fully recovered to 0."""
        return (
            any(t.to_level > t.from_level for t in self.transitions)
            and self.level == 0
        )

    def to_dict(self) -> dict:
        return {
            "level": self.level,
            "cap": self.cap,
            "transitions": [t.to_dict() for t in self.transitions],
            "completed_cycle": self.completed_cycle(),
        }
