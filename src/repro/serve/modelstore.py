"""Lazy model loading for serving workers: a bounded LRU over the store.

``load_kamel`` parses every pyramid model eagerly — right for offline
evaluation, wrong for a sharded worker that will only ever be asked about
its own partition. :func:`load_kamel_lazy` restores the same system with
every repository slot holding a :class:`LazyModel` proxy instead: the
first ``predict_masked`` pulls the real model out of the
:class:`~repro.io.serialize.ModelStore` through a bounded
:class:`ModelLRU`, and models that fall out of the working set are
evicted. A worker's resident memory is then O(LRU capacity), not
O(pyramid size) — the paper's "no single process holds every model"
posture, made literal.

Cache traffic is observable: hits, misses (= disk parses), and evictions
feed the ``repro.serve.model_lru.*`` counters, and the ``resident`` gauge
tracks occupancy, so ``kamel loadtest`` can show whether a partition
strategy actually bought model locality.
"""

from __future__ import annotations

import pathlib
from collections import OrderedDict
from typing import Sequence, Union

from repro.core.kamel import Kamel
from repro.io.serialize import ModelStore, load_kamel
from repro.mlm.base import MaskedModel, TokenProb
from repro.obs import instrument as obs
from repro.obs.tracing import span

__all__ = ["DEFAULT_LRU_CAPACITY", "LazyModel", "ModelLRU", "load_kamel_lazy"]

DEFAULT_LRU_CAPACITY = 64
"""Resident models per worker unless configured otherwise."""


class ModelLRU:
    """A bounded, least-recently-used cache of parsed models.

    One per worker process. All access happens on the worker's single
    processing thread, so no locking; the :class:`~repro.io.serialize.ModelStore`
    underneath opens a fresh handle per parse, so N workers over the same
    directory never contend.
    """

    def __init__(self, store: ModelStore, capacity: int = DEFAULT_LRU_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"LRU capacity must be >= 1, got {capacity!r}")
        self.store = store
        self.capacity = capacity
        self._cache: "OrderedDict[str, MaskedModel]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, file_name: str) -> MaskedModel:
        model = self._cache.get(file_name)
        if model is not None:
            self._cache.move_to_end(file_name)
            self.hits += 1
            obs.count("repro.serve.model_lru.hits_total")
            return model
        self.misses += 1
        obs.count("repro.serve.model_lru.misses_total")
        with span("serve.model_load", model=file_name):
            model = self.store.load(file_name)
        self._cache[file_name] = model
        while len(self._cache) > self.capacity:
            self._cache.popitem(last=False)
            self.evictions += 1
            obs.count("repro.serve.model_lru.evictions_total")
        obs.gauge("repro.serve.model_lru.resident").set(len(self._cache))
        return model

    def resident(self) -> list[str]:
        """File names currently cached, least recently used first."""
        return list(self._cache)

    def __len__(self) -> int:
        return len(self._cache)

    def __repr__(self) -> str:
        return (
            f"ModelLRU(capacity={self.capacity}, resident={len(self._cache)}, "
            f"hits={self.hits}, misses={self.misses}, evictions={self.evictions})"
        )


class LazyModel(MaskedModel):
    """A repository slot that loads its real model on first prediction.

    Stands in for one serialized model file. ``is_fitted`` answers
    ``True`` without touching disk — only *trained* models are ever
    serialized, and the ladder checks fitness before every rung, so a
    disk parse there would defeat the laziness. ``num_training_tokens``
    comes from the manifest metadata, also without a parse.
    """

    def __init__(self, cache: ModelLRU, file_name: str) -> None:
        self._cache = cache
        self.file_name = file_name
        self._token_count = int(
            cache.store.entry(file_name).get("token_count", 0) or 0
        )

    def fit(self, sequences: Sequence[Sequence[int]], vocab_size: int) -> MaskedModel:
        raise NotImplementedError(
            "LazyModel is a read-only serving proxy; retrain offline and re-save"
        )

    def predict_masked(
        self, tokens: Sequence[int], position: int, top_k: int = 10
    ) -> list[TokenProb]:
        return self._cache.get(self.file_name).predict_masked(tokens, position, top_k)

    @property
    def is_fitted(self) -> bool:
        return True

    @property
    def num_training_tokens(self) -> int:
        return self._token_count

    def __repr__(self) -> str:
        loaded = self.file_name in set(self._cache.resident())
        return f"LazyModel({self.file_name!r}, loaded={loaded})"


def load_kamel_lazy(
    directory: Union[str, pathlib.Path],
    lru_capacity: int = DEFAULT_LRU_CAPACITY,
) -> tuple[Kamel, ModelLRU]:
    """Restore a saved system with lazily loaded models.

    Same contract as :func:`~repro.io.serialize.load_kamel` — the
    returned system imputes bit-for-bit identically — except every
    repository model is a :class:`LazyModel` backed by one shared
    per-process :class:`ModelLRU`. Returns ``(system, cache)`` so callers
    can inspect cache traffic.
    """
    store = ModelStore(directory)
    cache = ModelLRU(store, lru_capacity)
    system = load_kamel(directory, model_loader=lambda name: LazyModel(cache, name))
    return system, cache
