"""KAMEL reproduction: a scalable BERT-based system for trajectory imputation.

This package reproduces the system of Musleh & Mokbel, *"KAMEL: A Scalable
BERT-based System for Trajectory Imputation"* (PVLDB 17(3), 2023; demo at
SIGMOD 2023), entirely from scratch: the five KAMEL modules, a numpy
transformer masked LM, a hexagonal-grid tokenizer, a synthetic-city GPS
substrate, the paper's baselines, and the full experiment harness.

Quickstart::

    from repro import Kamel, KamelConfig, make_porto_like

    dataset = make_porto_like(n_trajectories=200)
    train, test = dataset.split()
    system = Kamel(KamelConfig()).fit(train)
    dense = system.impute(test[0].sparsify(1000.0))
    print(len(test[0]), "->", len(dense.trajectory))
"""

from repro.core import Kamel, KamelConfig
from repro.core.result import ImputationResult, Imputer, SegmentOutcome
from repro.geo import BoundingBox, LocalProjection, Point, Trajectory
from repro.grid import HexGrid, SquareGrid
from repro.baselines import HmmMapMatcher, LinearImputer, TrImpute
from repro.roadnet import (
    Dataset,
    RoadNetwork,
    TrajectorySimulator,
    generate_city,
    make_jakarta_like,
    make_porto_like,
)
from repro.eval import build_workload, evaluate_imputation

__version__ = "1.0.0"

__all__ = [
    "BoundingBox",
    "Dataset",
    "HexGrid",
    "HmmMapMatcher",
    "ImputationResult",
    "Imputer",
    "Kamel",
    "KamelConfig",
    "LinearImputer",
    "LocalProjection",
    "Point",
    "RoadNetwork",
    "SegmentOutcome",
    "SquareGrid",
    "Trajectory",
    "TrajectorySimulator",
    "TrImpute",
    "build_workload",
    "evaluate_imputation",
    "generate_city",
    "make_jakarta_like",
    "make_porto_like",
    "__version__",
]
