"""Grid-density map inference from raw trajectories.

A deliberately classical algorithm (in the spirit of Biagioni & Eriksson's
KDE family): rasterize every trajectory onto a fine grid, accumulate visit
counts, threshold into an occupancy map, and expose a road-cell graph.

Crucially, trajectories are rasterized *as polylines* — each consecutive
point pair contributes the straight chord between them, because a map
inference algorithm has nothing better to assume about the in-between.
With dense (or well-imputed) input those chords hug the roads; with sparse
input they cut straight across blocks, which is exactly the failure mode
that motivates KAMEL.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass
from typing import Iterable, Optional

import networkx as nx

from repro.errors import ConfigError, EmptyInputError
from repro.geo import Point, Trajectory, interpolate

GridCell = tuple[int, int]


@dataclass(frozen=True)
class MapInferenceConfig:
    """Parameters of the grid-density inference."""

    cell_m: float = 25.0
    """Raster resolution; ~road-width scale."""
    min_visits: int = 2
    """Cells visited by fewer distinct trajectories are noise."""
    rasterize_step_m: float = 10.0
    """Sampling step when marking a polyline's cells."""

    def __post_init__(self) -> None:
        if self.cell_m <= 0 or self.rasterize_step_m <= 0:
            raise ConfigError("cell_m and rasterize_step_m must be positive")
        if self.min_visits < 1:
            raise ConfigError("min_visits must be >= 1")


class InferredMap:
    """The inference output: per-cell trajectory visit counts."""

    def __init__(self, cell_m: float, counts: dict[GridCell, int]) -> None:
        self.cell_m = cell_m
        self._counts = dict(counts)

    @property
    def num_cells(self) -> int:
        return len(self._counts)

    def visit_count(self, cell: GridCell) -> int:
        return self._counts.get(cell, 0)

    def occupied_cells(self, min_visits: int = 1) -> set[GridCell]:
        """Cells supported by at least ``min_visits`` trajectories."""
        return {c for c, n in self._counts.items() if n >= min_visits}

    def cell_center(self, cell: GridCell) -> Point:
        return Point((cell[0] + 0.5) * self.cell_m, (cell[1] + 0.5) * self.cell_m)

    def road_points(self, min_visits: int = 1) -> list[Point]:
        """Centers of the occupied cells — the inferred road surface."""
        return [self.cell_center(c) for c in sorted(self.occupied_cells(min_visits))]

    def to_graph(self, min_visits: int = 1) -> nx.Graph:
        """8-adjacency graph over occupied cells (a raster road skeleton)."""
        occupied = self.occupied_cells(min_visits)
        graph = nx.Graph()
        for cell in occupied:
            graph.add_node(cell, point=self.cell_center(cell))
        for i, j in occupied:
            for di in (-1, 0, 1):
                for dj in (-1, 0, 1):
                    if di == dj == 0:
                        continue
                    neighbour = (i + di, j + dj)
                    if neighbour in occupied:
                        graph.add_edge((i, j), neighbour)
        return graph

    def total_road_length_m(self, min_visits: int = 1) -> float:
        """Rough inferred road length: one cell edge per occupied cell."""
        return len(self.occupied_cells(min_visits)) * self.cell_m


class TrajectoryMapInference:
    """Accumulates trajectories into an :class:`InferredMap`."""

    def __init__(self, config: Optional[MapInferenceConfig] = None) -> None:
        self.config = config or MapInferenceConfig()

    def _cells_of(self, trajectory: Trajectory) -> set[GridCell]:
        cfg = self.config
        cells: set[GridCell] = set()
        points = trajectory.points
        if not points:
            return cells

        def mark(p: Point) -> None:
            cells.add((math.floor(p.x / cfg.cell_m), math.floor(p.y / cfg.cell_m)))

        mark(points[0])
        for a, b in trajectory.segments():
            length = a.distance_to(b)
            steps = max(1, int(length / cfg.rasterize_step_m))
            for k in range(1, steps + 1):
                mark(interpolate(a, b, k / steps))
        return cells

    def infer(self, trajectories: Iterable[Trajectory]) -> InferredMap:
        """Infer a map; each trajectory votes once per cell it crosses."""
        counts: dict[GridCell, int] = defaultdict(int)
        seen_any = False
        for trajectory in trajectories:
            seen_any = True
            for cell in self._cells_of(trajectory):
                counts[cell] += 1
        if not seen_any:
            raise EmptyInputError("map inference needs at least one trajectory")
        # All counts are kept; consumers threshold via occupied_cells()
        # (the config's min_visits is the conventional default to pass).
        return InferredMap(self.config.cell_m, dict(counts))
