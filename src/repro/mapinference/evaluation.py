"""GEO-style evaluation of an inferred map against the true network.

Follows the standard map-construction evaluation idea (Biagioni &
Eriksson's GEO metric): sample "marbles" every ``sample_step_m`` meters
along the ground-truth network and "holes" at the inferred road cells,
then measure

* **recall** — the fraction of true-network samples that have an inferred
  road cell within ``tolerance_m`` (did we find the roads?), and
* **precision** — the fraction of inferred road cells within
  ``tolerance_m`` of the true network (did we hallucinate roads?).
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass

from repro.errors import EmptyInputError
from repro.geo import Point, interpolate
from repro.mapinference.inference import InferredMap
from repro.roadnet.network import RoadNetwork


@dataclass(frozen=True)
class MapScores:
    """Precision/recall of an inferred map against the truth."""

    precision: float
    recall: float
    num_inferred_cells: int
    num_truth_samples: int

    @property
    def f1(self) -> float:
        if self.precision + self.recall == 0.0:
            return 0.0
        return 2 * self.precision * self.recall / (self.precision + self.recall)


def _network_samples(network: RoadNetwork, step_m: float) -> list[Point]:
    samples: list[Point] = []
    for u, v, data in network.graph.edges(data=True):
        geometry = data["geometry"]
        for a, b in zip(geometry, geometry[1:]):
            length = a.distance_to(b)
            steps = max(1, int(length / step_m))
            for k in range(steps):
                samples.append(interpolate(a, b, k / steps))
    return samples


class _PointIndex:
    """Bucket index answering "is any point within r of p" queries."""

    def __init__(self, points: list[Point], radius: float) -> None:
        self._radius = radius
        self._cell = max(radius, 1.0)
        self._buckets: dict[tuple[int, int], list[Point]] = defaultdict(list)
        for p in points:
            self._buckets[self._key(p)].append(p)

    def _key(self, p: Point) -> tuple[int, int]:
        return (math.floor(p.x / self._cell), math.floor(p.y / self._cell))

    def any_within(self, p: Point) -> bool:
        ci, cj = self._key(p)
        for di in (-1, 0, 1):
            for dj in (-1, 0, 1):
                for q in self._buckets.get((ci + di, cj + dj), ()):
                    if p.distance_to(q) <= self._radius:
                        return True
        return False


def evaluate_inferred_map(
    inferred: InferredMap,
    network: RoadNetwork,
    tolerance_m: float = 30.0,
    sample_step_m: float = 25.0,
    min_visits: int = 2,
) -> MapScores:
    """Score ``inferred`` against the ground-truth ``network``."""
    if tolerance_m <= 0 or sample_step_m <= 0:
        raise ValueError("tolerance_m and sample_step_m must be positive")
    truth_samples = _network_samples(network, sample_step_m)
    if not truth_samples:
        raise EmptyInputError("the ground-truth network has no edges")
    road_points = inferred.road_points(min_visits)

    truth_index = _PointIndex(truth_samples, tolerance_m)
    inferred_index = _PointIndex(road_points, tolerance_m)

    if road_points:
        precision = sum(
            1 for p in road_points if truth_index.any_within(p)
        ) / len(road_points)
        recall = sum(
            1 for p in truth_samples if inferred_index.any_within(p)
        ) / len(truth_samples)
    else:
        precision = 0.0
        recall = 0.0
    return MapScores(
        precision=precision,
        recall=recall,
        num_inferred_cells=len(road_points),
        num_truth_samples=len(truth_samples),
    )
