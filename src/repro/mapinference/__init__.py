"""Trajectory-based map inference: KAMEL's motivating application.

The paper positions KAMEL "as a pre-processing step for map inference
applications" — reconstructing an unknown road network from trajectories
(Biagioni & Eriksson 2012 and the industrial efforts cited in Section 1).
This package provides a compact grid-density map-inference algorithm plus
the GEO-style evaluation that compares an inferred map against the true
network, enabling the end-to-end extension experiment: *how much better
does map inference get when the trajectories are KAMEL-imputed first?*
(``benchmarks/bench_map_inference.py``).
"""

from repro.mapinference.inference import (
    InferredMap,
    MapInferenceConfig,
    TrajectoryMapInference,
)
from repro.mapinference.evaluation import MapScores, evaluate_inferred_map

__all__ = [
    "InferredMap",
    "MapInferenceConfig",
    "MapScores",
    "TrajectoryMapInference",
    "evaluate_inferred_map",
]
