"""A dependency-free SVG choropleth of per-cell quality scores.

Input is a mapping of grid cells to scores in ``[0, 1]`` — what
:meth:`repro.obs.quality.SpatialQualityMap.quality_scores` produces —
plus the grid that gives each cell its shape. Output is a deterministic
choropleth: same scores in, byte-identical SVG out, because cells are
drawn in sorted order, colors come from a fixed three-stop ramp with
integer-rounded interpolation (never ``hash()`` or a colormap library),
and every coordinate is formatted to two decimals — the same discipline
as :mod:`repro.viz.flame`.

Hex cells draw their true hexagon outline (``grid.vertices``); square
grids, which have no ``vertices`` method, fall back to axis-aligned
squares derived from the centroid and edge length. The y axis is flipped
so north stays up (SVG y grows downward).
"""

from __future__ import annotations

import pathlib
from typing import Mapping, Optional, Union
from xml.sax.saxutils import escape

__all__ = ["render_heatmap_svg", "write_heatmap_svg"]


Cell = tuple[int, int]

# Low -> mid -> high quality. Drawn from the flame palette so the two
# views read as one family: red (bad), amber (middling), green (good).
_RAMP = ((0xE6, 0x69, 0x4A), (0xED, 0xAA, 0x3C), (0x58, 0xB0, 0x7E))


def _ramp_color(value: float) -> str:
    """The ramp color for a score in [0, 1] (clamped, integer-rounded)."""
    v = min(1.0, max(0.0, value))
    if v <= 0.5:
        lo, hi = _RAMP[0], _RAMP[1]
        t = v / 0.5
    else:
        lo, hi = _RAMP[1], _RAMP[2]
        t = (v - 0.5) / 0.5
    r, g, b = (round(a + (c - a) * t) for a, c in zip(lo, hi))
    return f"#{r:02x}{g:02x}{b:02x}"


def _cell_corners(grid, cell: Cell) -> list[tuple[float, float]]:
    """The cell's outline in map coordinates (hex vertices or square)."""
    vertices = getattr(grid, "vertices", None)
    if vertices is not None:
        return [(p.x, p.y) for p in vertices(cell)]
    c = grid.centroid(cell)
    h = grid.edge_length_m / 2.0
    return [(c.x - h, c.y - h), (c.x + h, c.y - h), (c.x + h, c.y + h), (c.x - h, c.y + h)]


def render_heatmap_svg(
    scores: Mapping[Cell, float],
    grid,
    counts: Optional[Mapping[Cell, int]] = None,
    width_px: int = 640,
    title: str = "KAMEL quality heatmap",
) -> str:
    """Render per-cell scores as a self-contained SVG choropleth.

    ``scores`` maps cells to quality in [0, 1] (1 = good, drawn green);
    ``counts`` (optional) adds per-cell sample counts to the tooltips.
    Cells are drawn in sorted cell order, so equal inputs yield
    byte-identical output.
    """
    if width_px <= 0:
        raise ValueError("width_px must be positive")
    header_px = 24
    legend_px = 34
    if not scores:
        return (
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{width_px}" '
            f'height="{header_px + legend_px}">'
            f'<text x="8" y="16" font-size="13">{escape(title)}: no cells</text>'
            "</svg>\n"
        )

    outlines = {cell: _cell_corners(grid, cell) for cell in scores}
    xs = [x for corners in outlines.values() for x, _ in corners]
    ys = [y for corners in outlines.values() for _, y in corners]
    min_x, max_x = min(xs), max(xs)
    min_y, max_y = min(ys), max(ys)
    span_x = max(max_x - min_x, 1e-9)
    span_y = max(max_y - min_y, 1e-9)
    pad = 4.0
    scale = (width_px - 2 * pad) / span_x
    map_px = span_y * scale + 2 * pad
    height_px = int(header_px + map_px + legend_px)

    def to_px(x: float, y: float) -> tuple[float, float]:
        # Flip y: map north (large y) at the top of the chart.
        return (
            pad + (x - min_x) * scale,
            header_px + pad + (max_y - y) * scale,
        )

    elements: list[str] = [
        '<rect width="100%" height="100%" fill="#fbfbf9"/>',
        f'<text x="8" y="16" font-size="13" font-family="monospace">'
        f"{escape(title)} — {len(scores)} cells</text>",
    ]
    for cell in sorted(scores):
        value = scores[cell]
        points = " ".join(
            f"{px:.2f},{py:.2f}" for px, py in (to_px(x, y) for x, y in outlines[cell])
        )
        tooltip = f"cell {cell}: quality {value:.3f}"
        if counts is not None and cell in counts:
            tooltip += f" ({counts[cell]} points)"
        elements.append(
            f"<g><title>{escape(tooltip)}</title>"
            f'<polygon points="{points}" fill="{_ramp_color(value)}" '
            f'stroke="#fbfbf9" stroke-width="0.5"/></g>'
        )

    # Legend: ten fixed swatches of the ramp, worst on the left.
    legend_y = header_px + map_px + 8
    swatch_w = 18
    for k in range(10):
        x = 8 + k * swatch_w
        elements.append(
            f'<rect x="{x:.2f}" y="{legend_y:.2f}" width="{swatch_w}" height="10" '
            f'fill="{_ramp_color((k + 0.5) / 10.0)}"/>'
        )
    label_y = legend_y + 20
    elements.append(
        f'<text x="8" y="{label_y:.2f}" font-size="11" font-family="monospace" '
        f'fill="#1a1a1a">0 poor</text>'
    )
    elements.append(
        f'<text x="{8 + 10 * swatch_w - 42:.2f}" y="{label_y:.2f}" font-size="11" '
        f'font-family="monospace" fill="#1a1a1a">1 good</text>'
    )

    body = "\n".join(elements)
    return (
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width_px}" '
        f'height="{height_px}" viewBox="0 0 {width_px} {height_px}">\n'
        f"{body}\n</svg>\n"
    )


def write_heatmap_svg(
    path: Union[str, pathlib.Path],
    scores: Mapping[Cell, float],
    grid,
    counts: Optional[Mapping[Cell, int]] = None,
    width_px: int = 640,
    title: Optional[str] = None,
) -> pathlib.Path:
    """Render and write the choropleth; returns the path."""
    path = pathlib.Path(path)
    svg = render_heatmap_svg(
        scores,
        grid,
        counts=counts,
        width_px=width_px,
        **({"title": title} if title else {}),
    )
    path.write_text(svg)
    return path
