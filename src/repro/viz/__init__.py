"""SVG rendering of networks, trajectories, imputations, and profiles.

Pure-stdlib SVG string building (no plotting dependency), good enough to
eyeball what the system did: roads in grey, the ground truth in green,
the sparse input as dots, and the imputed path in blue with failed
(straight-line) segments dashed red — plus a flame view of collapsed
profiler stacks (:mod:`repro.viz.flame`, fed by ``kamel profile``) and
a per-cell quality choropleth (:mod:`repro.viz.heatmap`, fed by
``kamel quality --heatmap``).
"""

from repro.viz.flame import (
    FlameNode,
    parse_collapsed,
    render_flame_svg,
    write_flame_svg,
)
from repro.viz.heatmap import render_heatmap_svg, write_heatmap_svg
from repro.viz.svg import SvgCanvas, render_imputation, render_network

__all__ = [
    "FlameNode",
    "SvgCanvas",
    "parse_collapsed",
    "render_flame_svg",
    "render_heatmap_svg",
    "render_imputation",
    "render_network",
    "write_flame_svg",
    "write_heatmap_svg",
]
