"""SVG rendering of networks, trajectories, and imputation results.

Pure-stdlib SVG string building (no plotting dependency), good enough to
eyeball what the system did: roads in grey, the ground truth in green,
the sparse input as dots, and the imputed path in blue with failed
(straight-line) segments dashed red.
"""

from repro.viz.svg import SvgCanvas, render_imputation, render_network

__all__ = ["SvgCanvas", "render_imputation", "render_network"]
