"""A minimal SVG canvas plus ready-made renderers."""

from __future__ import annotations

import pathlib
from typing import Optional, Sequence, Union
from xml.sax.saxutils import escape

from repro.core.result import ImputationResult
from repro.errors import EmptyInputError
from repro.geo import BoundingBox, Point, Trajectory
from repro.roadnet.network import RoadNetwork


class SvgCanvas:
    """Accumulates SVG elements over a world-coordinate viewport.

    World coordinates are the library's local planar frame (meters, y up);
    the canvas flips y so north is up in the rendered image.
    """

    def __init__(self, world: BoundingBox, width_px: int = 800, margin_m: float = 50.0):
        if width_px <= 0:
            raise ValueError(f"width_px must be positive, got {width_px!r}")
        self.world = world.expand(margin_m)
        self.width_px = width_px
        self._scale = width_px / max(1e-9, self.world.width)
        self.height_px = max(1, int(self.world.height * self._scale))
        self._elements: list[str] = []

    def _x(self, x: float) -> float:
        return (x - self.world.min_x) * self._scale

    def _y(self, y: float) -> float:
        return (self.world.max_y - y) * self._scale

    def polyline(
        self,
        points: Sequence[Point],
        color: str = "#333333",
        width: float = 1.5,
        dashed: bool = False,
        opacity: float = 1.0,
    ) -> None:
        if len(points) < 2:
            return
        coords = " ".join(f"{self._x(p.x):.1f},{self._y(p.y):.1f}" for p in points)
        dash = ' stroke-dasharray="6,4"' if dashed else ""
        self._elements.append(
            f'<polyline points="{coords}" fill="none" stroke="{color}" '
            f'stroke-width="{width}" stroke-opacity="{opacity}"{dash}/>'
        )

    def circle(self, center: Point, radius_px: float = 3.0, color: str = "#000000") -> None:
        self._elements.append(
            f'<circle cx="{self._x(center.x):.1f}" cy="{self._y(center.y):.1f}" '
            f'r="{radius_px}" fill="{color}"/>'
        )

    def text(self, anchor: Point, content: str, size_px: int = 12, color: str = "#000000") -> None:
        self._elements.append(
            f'<text x="{self._x(anchor.x):.1f}" y="{self._y(anchor.y):.1f}" '
            f'font-size="{size_px}" fill="{color}">{escape(content)}</text>'
        )

    def legend(self, entries: Sequence[tuple[str, str]]) -> None:
        """Color/label pairs drawn in the top-left corner."""
        x0 = self.world.min_x + 10 / self._scale
        y0 = self.world.max_y - 10 / self._scale
        step = 16 / self._scale
        for k, (color, label) in enumerate(entries):
            y = y0 - k * step
            self.circle(Point(x0, y), 4, color)
            self.text(Point(x0 + 10 / self._scale, y - 4 / self._scale), label)

    def to_string(self) -> str:
        body = "\n".join(self._elements)
        return (
            f'<svg xmlns="http://www.w3.org/2000/svg" '
            f'width="{self.width_px}" height="{self.height_px}" '
            f'viewBox="0 0 {self.width_px} {self.height_px}">\n'
            f'<rect width="100%" height="100%" fill="#ffffff"/>\n'
            f"{body}\n</svg>\n"
        )

    def save(self, path: Union[str, pathlib.Path]) -> pathlib.Path:
        path = pathlib.Path(path)
        path.write_text(self.to_string())
        return path


def render_network(
    network: RoadNetwork,
    canvas: Optional[SvgCanvas] = None,
    color: str = "#bbbbbb",
) -> SvgCanvas:
    """Draw every road edge; returns the canvas for further layers."""
    if network.num_nodes == 0:
        raise EmptyInputError("cannot render an empty network")
    if canvas is None:
        canvas = SvgCanvas(network.bbox())
    for u, v, data in network.graph.edges(data=True):
        canvas.polyline(data["geometry"], color=color, width=2.0)
    return canvas


def render_imputation(
    truth: Trajectory,
    sparse: Trajectory,
    result: ImputationResult,
    network: Optional[RoadNetwork] = None,
) -> SvgCanvas:
    """The standard inspection picture for one imputed trajectory.

    Layers: road network (if given, grey), ground truth (green), imputed
    trajectory (blue; failed segments drawn dashed red on top), sparse
    input points (black dots).
    """
    boxes = [truth.bbox(), result.trajectory.bbox()]
    if network is not None:
        boxes.append(network.bbox())
    canvas = SvgCanvas(BoundingBox.union_all(boxes))
    if network is not None:
        render_network(network, canvas)
    canvas.polyline(truth.points, color="#2e8b57", width=2.0, opacity=0.8)
    canvas.polyline(result.trajectory.points, color="#1f6fd6", width=2.0)

    # Re-draw failed segments dashed red: slice the imputed trajectory at
    # the sparse anchors (imputers preserve them in order).
    failed_indices = {o.start_index for o in result.segments if o.failed}
    anchors = sparse.points
    piece: list[Point] = []
    segment_index = 0
    cursor = 1
    for p in result.trajectory.points:
        piece.append(p)
        if cursor < len(anchors) and p.x == anchors[cursor].x and p.y == anchors[cursor].y:
            if segment_index in failed_indices:
                canvas.polyline(piece, color="#d64545", width=2.5, dashed=True)
            piece = [p]
            segment_index += 1
            cursor += 1
    for p in sparse.points:
        canvas.circle(p, 3.5, "#111111")
    canvas.legend(
        [
            ("#2e8b57", "ground truth"),
            ("#1f6fd6", "imputed"),
            ("#d64545", "failed (linear)"),
            ("#111111", "sparse input"),
        ]
    )
    return canvas
