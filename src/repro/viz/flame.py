"""A dependency-free SVG flame view of collapsed-stack profiles.

Input is the standard collapsed-stack text format every flamegraph tool
exchanges (``frame;frame;frame <count>``, one line per merged stack) —
exactly what :meth:`repro.obs.profile.Profile.collapsed` emits. Output
is a deterministic icicle chart (root row on top, callees below): same
text in, byte-identical SVG out, because frame colors come from a CRC of
the frame name and children are laid out in sorted order, never from
``hash()`` or a random palette.
"""

from __future__ import annotations

import pathlib
import zlib
from typing import Optional, Union
from xml.sax.saxutils import escape

__all__ = ["FlameNode", "parse_collapsed", "render_flame_svg", "write_flame_svg"]


class FlameNode:
    """One frame in the merged stack tree."""

    __slots__ = ("name", "value", "self_value", "children")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self.self_value = 0.0
        self.children: dict[str, "FlameNode"] = {}

    def child(self, name: str) -> "FlameNode":
        node = self.children.get(name)
        if node is None:
            node = self.children[name] = FlameNode(name)
        return node

    @property
    def depth(self) -> int:
        if not self.children:
            return 1
        return 1 + max(c.depth for c in self.children.values())


def parse_collapsed(text: str) -> FlameNode:
    """Collapsed-stack lines into a merged tree under a synthetic root.

    A frame's ``value`` is its own samples plus every descendant's, so a
    parent line (``a 10``) and its child line (``a;b 5``) combine into
    a=15 with 5 attributed below — the standard flamegraph convention.
    Blank lines are skipped; a line without a numeric tail is an error.
    """
    root = FlameNode("all")
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        stack, _, count = line.rpartition(" ")
        if not stack:
            raise ValueError(f"line {lineno}: no stack before the count: {line!r}")
        try:
            value = float(count)
        except ValueError as exc:
            raise ValueError(f"line {lineno}: bad sample count {count!r}") from exc
        node = root
        node.value += value
        for frame in stack.split(";"):
            node = node.child(frame)
            node.value += value
        node.self_value += value
    return root


_PALETTE = (
    "#e6694a", "#e8893c", "#edaa3c", "#d9c13f", "#a8bf4d",
    "#7ab85c", "#58b07e", "#4aa8a0", "#4e93bd", "#6a7fc9",
    "#8d6cbf", "#b05fa8", "#c75a7f",
)


def _color(name: str) -> str:
    """A stable warm color per frame name (CRC-indexed, not ``hash()``)."""
    return _PALETTE[zlib.crc32(name.encode("utf-8")) % len(_PALETTE)]


def render_flame_svg(
    collapsed: str,
    width_px: int = 1000,
    row_px: int = 18,
    min_fraction: float = 0.002,
    title: str = "KAMEL profile",
) -> str:
    """Render collapsed-stack text as a self-contained SVG icicle chart.

    Frames narrower than ``min_fraction`` of the total are dropped (they
    would be sub-pixel); every drawn frame carries a ``<title>`` tooltip
    with its name, value, and share.
    """
    if width_px <= 0 or row_px <= 0:
        raise ValueError("width_px and row_px must be positive")
    root = parse_collapsed(collapsed)
    total = root.value
    header_px = 24
    if total <= 0:
        return (
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{width_px}" '
            f'height="{header_px + row_px}">'
            f'<text x="8" y="16" font-size="13">{escape(title)}: no samples</text>'
            "</svg>\n"
        )
    height_px = header_px + root.depth * row_px
    elements: list[str] = [
        f'<rect width="100%" height="100%" fill="#fbfbf9"/>',
        f'<text x="8" y="16" font-size="13" font-family="monospace">'
        f"{escape(title)} — {total:.6g} samples</text>",
    ]
    scale = width_px / total

    def emit(node: FlameNode, x: float, depth: int) -> None:
        w = node.value * scale
        if node.value / total < min_fraction:
            return
        y = header_px + (depth - 1) * row_px
        share = node.value / total
        tooltip = f"{node.name}: {node.value:.6g} ({share:.1%})"
        elements.append(
            f'<g><title>{escape(tooltip)}</title>'
            f'<rect x="{x:.2f}" y="{y}" width="{max(w, 0.5):.2f}" '
            f'height="{row_px - 1}" fill="{_color(node.name)}" rx="1"/>'
        )
        # ~7 px per character of monospace at font-size 11.
        max_chars = int((w - 6) / 7)
        if max_chars >= 2:
            label = node.name
            if len(label) > max_chars:
                label = label[: max_chars - 1] + "…"
            elements.append(
                f'<text x="{x + 3:.2f}" y="{y + row_px - 6}" font-size="11" '
                f'font-family="monospace" fill="#1a1a1a">{escape(label)}</text>'
            )
        elements.append("</g>")
        cx = x
        for name in sorted(node.children):
            child = node.children[name]
            emit(child, cx, depth + 1)
            cx += child.value * scale

    x = 0.0
    for name in sorted(root.children):
        child = root.children[name]
        emit(child, x, 1)
        x += child.value * scale
    body = "\n".join(elements)
    return (
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width_px}" '
        f'height="{height_px}" viewBox="0 0 {width_px} {height_px}">\n'
        f"{body}\n</svg>\n"
    )


def write_flame_svg(
    path: Union[str, pathlib.Path],
    collapsed: str,
    width_px: int = 1000,
    title: Optional[str] = None,
) -> pathlib.Path:
    """Render and write the flame view; returns the path."""
    path = pathlib.Path(path)
    svg = render_flame_svg(
        collapsed, width_px=width_px, **({"title": title} if title else {})
    )
    path.write_text(svg)
    return path
