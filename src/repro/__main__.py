"""``python -m repro`` entry point (same as the ``kamel`` console script)."""

from repro.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
